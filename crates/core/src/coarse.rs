//! Coarse-grained clustering (paper §3.3): variable-length segments →
//! fixed-width feature vectors (TSFEL-style catalog) → HAC under
//! Euclidean distance → silhouette-selected cluster count → centroid
//! library for online pattern matching.

use crate::preprocess::Segment;
use ns_cluster::{linkage_from_distance, select_k, Linkage};
use ns_features::FeatureCatalog;
use ns_linalg::distance::CondensedDistance;
use ns_linalg::matrix::Matrix;
use ns_linalg::matrix_f32::MatrixF32;
use ns_linalg::{stats, vecops};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration for the coarse stage.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoarseConfig {
    /// Feature catalog applied per metric (default: the 134-feature set).
    pub catalog: FeatureCatalog,
    pub linkage: Linkage,
    /// Upper bound of the silhouette sweep.
    pub k_max: usize,
    /// Fall back to one cluster below this silhouette.
    pub min_silhouette: f64,
    /// Sample rate handed to spectral features.
    pub sample_rate: f64,
    /// Override the silhouette selection with a fixed k (Fig. 6(b)).
    pub force_k: Option<usize>,
    /// Online matching probe length in steps (§3.5: ~1 hour of
    /// post-transition data). The matching library is built from the
    /// first `probe_len` steps of each training segment so probe and
    /// library features are length-comparable. `None` = full segments.
    pub probe_len: Option<usize>,
}

impl Default for CoarseConfig {
    fn default() -> Self {
        Self {
            catalog: FeatureCatalog::standard(),
            linkage: Linkage::Ward,
            k_max: 12,
            min_silhouette: 0.05,
            sample_rate: 1.0 / 30.0,
            force_k: None,
            probe_len: None,
        }
    }
}

/// The fitted cluster library: feature-space scaler, centroids, and the
/// matching threshold used online to decide "known pattern vs new".
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterModel {
    pub feat_mean: Vec<f64>,
    pub feat_std: Vec<f64>,
    /// Cluster centroids in standardized (full-segment) feature space.
    pub centroids: Vec<Vec<f64>>,
    /// Training-segment labels (aligned with the fit input order).
    pub labels: Vec<usize>,
    /// Distances of each training segment to its centroid.
    pub member_distances: Vec<f64>,
    /// Silhouette at the chosen k (0 when k = 1 or forced).
    pub silhouette: f64,
    /// Probe-space scaler + centroids: the online matching library is
    /// built from the first `probe_len` steps of each training segment so
    /// that short post-transition probes are length-comparable (§3.5).
    pub probe_feat_mean: Vec<f64>,
    pub probe_feat_std: Vec<f64>,
    /// One contiguous `k × dim` row-major matrix (row `c` = centroid `c`)
    /// so the online nearest-centroid scan walks a single allocation
    /// instead of chasing per-row heap pointers.
    pub probe_centroids: Matrix,
    /// Matching radius in probe space: beyond this is "unmatched pattern".
    pub match_radius: f64,
}

impl ClusterModel {
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Standardize a raw full-segment feature vector.
    pub fn standardize(&self, feat: &[f64]) -> Vec<f64> {
        feat.iter()
            .zip(self.feat_mean.iter().zip(&self.feat_std))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }

    /// Standardize a raw probe feature vector.
    pub fn standardize_probe(&self, feat: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.standardize_probe_into(feat, &mut out);
        out
    }

    /// Allocation-free [`ClusterModel::standardize_probe`]: writes the
    /// standardized vector into `out`, reusing its capacity. Steady-state
    /// streaming callers pass the same scratch every call and never touch
    /// the heap.
    pub fn standardize_probe_into(&self, feat: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            feat.iter()
                .zip(self.probe_feat_mean.iter().zip(&self.probe_feat_std))
                .map(|(&v, (&m, &s))| (v - m) / s),
        );
    }

    /// Nearest probe-space centroid and its distance (online matching).
    pub fn match_pattern(&self, raw_probe_feat: &[f64]) -> (usize, f64) {
        let mut scratch = Vec::new();
        self.match_pattern_into(raw_probe_feat, &mut scratch)
    }

    /// Allocation-free [`ClusterModel::match_pattern`]: standardizes into
    /// `scratch` and scans the contiguous centroid matrix with the
    /// early-abandon [`ns_linalg::distance::nearest_row`] kernel, which is
    /// bit-identical to the full per-centroid `euclidean` scan (argmin,
    /// ties and returned distance included).
    pub fn match_pattern_into(
        &self,
        raw_probe_feat: &[f64],
        scratch: &mut Vec<f64>,
    ) -> (usize, f64) {
        self.standardize_probe_into(raw_probe_feat, scratch);
        ns_linalg::distance::nearest_row(&self.probe_centroids, scratch)
    }

    /// Whether a distance constitutes a match (within the library radius).
    pub fn is_match(&self, distance: f64) -> bool {
        distance <= self.match_radius
    }

    /// Indices of the `k` member segments closest to centroid `c`
    /// (data-augmentation selection of §3.4).
    pub fn nearest_members(&self, c: usize, k: usize) -> Vec<usize> {
        let members = self.members_by_distance(c);
        members.into_iter().take(k).collect()
    }

    /// `k` member segments of cluster `c` stratified across the
    /// distance-to-centroid distribution (closest always included).
    /// Centroid-only selection under-covers large clusters: test
    /// segments are drawn from the whole spread, so the shared model
    /// must see the edges too.
    pub fn spread_members(&self, c: usize, k: usize) -> Vec<usize> {
        let members = self.members_by_distance(c);
        let n = members.len();
        if n <= k || k == 0 {
            return members;
        }
        (0..k)
            .map(|j| members[j * (n - 1) / (k - 1).max(1)])
            .collect()
    }

    fn members_by_distance(&self, c: usize) -> Vec<usize> {
        let mut members: Vec<(usize, f64)> = self
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == c)
            .map(|(i, _)| (i, self.member_distances[i]))
            .collect();
        members.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        members.into_iter().map(|(i, _)| i).collect()
    }

    /// Add a brand-new cluster centered at the given *raw probe* feature
    /// vector (online new-pattern path, §3.5). Returns the new cluster
    /// id. The full-segment centroid is seeded at the probe position so
    /// both libraries stay aligned.
    pub fn add_cluster(&mut self, raw_probe_feat: &[f64]) -> usize {
        let z = self.standardize_probe(raw_probe_feat);
        self.probe_centroids.push_row(&z);
        self.centroids.push(z);
        self.centroids.len() - 1
    }

    /// Shift a probe centroid toward a newly matched raw probe feature
    /// vector (incremental centroid refinement with learning rate
    /// `alpha`).
    pub fn refine_centroid(&mut self, cluster: usize, raw_probe_feat: &[f64], alpha: f64) {
        let z = self.standardize_probe(raw_probe_feat);
        let cen = self.probe_centroids.row_mut(cluster);
        for (c, v) in cen.iter_mut().zip(z) {
            *c += alpha * (v - *c);
        }
    }

    /// Bake an f32 copy of the probe-matching library for the opt-in
    /// precision tier. The bake is a point-in-time snapshot: callers that
    /// mutate the library afterwards ([`ClusterModel::add_cluster`],
    /// [`ClusterModel::refine_centroid`]) must re-bake — the streaming
    /// engine holds the fitted model immutable for the lifetime of a run
    /// (fingerprinted at checkpoint), so it bakes once per model.
    pub fn probe_library_f32(&self) -> ProbeLibraryF32 {
        ProbeLibraryF32 {
            mean: self.probe_feat_mean.iter().map(|&v| v as f32).collect(),
            std: self.probe_feat_std.iter().map(|&v| v as f32).collect(),
            centroids: MatrixF32::from_matrix(&self.probe_centroids),
        }
    }
}

/// f32 twin of the probe-matching library: down-converted scaler and
/// contiguous centroid matrix for the precision-tiered
/// [`ProbeLibraryF32::match_pattern_into`] scan. Standardization and the
/// early-abandon distance scan both run in f32; the returned distance is
/// widened to f64 so [`ClusterModel::is_match`] compares it against the
/// same f64 radius as the default tier.
#[derive(Clone, Debug, Default)]
pub struct ProbeLibraryF32 {
    mean: Vec<f32>,
    std: Vec<f32>,
    centroids: MatrixF32,
}

impl ProbeLibraryF32 {
    /// f32 twin of [`ClusterModel::match_pattern_into`]: standardize the
    /// raw probe features into `scratch` (f32 arithmetic) and scan the
    /// centroid library with the early-abandon
    /// [`ns_linalg::distance::nearest_row_f32`] kernel.
    pub fn match_pattern_into(
        &self,
        raw_probe_feat: &[f64],
        scratch: &mut Vec<f32>,
    ) -> (usize, f64) {
        scratch.clear();
        scratch.extend(
            raw_probe_feat
                .iter()
                .zip(self.mean.iter().zip(&self.std))
                .map(|(&v, (&m, &s))| (v as f32 - m) / s),
        );
        ns_linalg::distance::nearest_row_f32(&self.centroids, scratch)
    }

    /// Number of centroids in the baked library.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }
}

/// Extract the fixed-width feature vector of one segment.
pub fn segment_features(cfg: &CoarseConfig, seg: &Matrix) -> Vec<f64> {
    cfg.catalog.extract_mts(seg, cfg.sample_rate)
}

/// Fit the coarse clustering over training segments.
///
/// Returns the cluster model plus the per-segment feature matrix (reused
/// by the fine-grained stage for nearest-member selection).
pub fn fit(cfg: &CoarseConfig, segments: &[Segment]) -> (ClusterModel, Vec<Vec<f64>>) {
    assert!(!segments.is_empty(), "cannot cluster zero segments");
    // 1. Features (parallel over segments). The span wraps the parallel
    // region from the calling thread, so it nests under `fit/coarse`.
    let feat_span = ns_obs::trace::span("features");
    let feats: Vec<Vec<f64>> = segments
        .par_iter()
        .map(|s| segment_features(cfg, &s.data))
        .collect();
    drop(feat_span);
    let dim = feats[0].len();
    // 2. Feature standardization across the segment population.
    let mut feat_mean = vec![0.0; dim];
    let mut feat_std = vec![0.0; dim];
    for j in 0..dim {
        let col: Vec<f64> = feats.iter().map(|f| f[j]).collect();
        let (m, s) = (stats::mean(&col), stats::std_dev(&col));
        feat_mean[j] = m;
        feat_std[j] = if s < 1e-12 { 1.0 } else { s };
    }
    let zfeats: Vec<Vec<f64>> = feats
        .iter()
        .map(|f| {
            f.iter()
                .zip(feat_mean.iter().zip(&feat_std))
                .map(|(&v, (&m, &s))| (v - m) / s)
                .collect()
        })
        .collect();
    // 3. HAC + silhouette-selected k.
    let linkage_span = ns_obs::trace::span("linkage");
    let n = zfeats.len();
    let dist = CondensedDistance::compute(n, |i, j| vecops::euclidean(&zfeats[i], &zfeats[j]));
    let dendrogram = linkage_from_distance(&dist, cfg.linkage);
    let (labels, silhouette) = match cfg.force_k {
        Some(k) => {
            let k = k.clamp(1, n);
            let labels = dendrogram.cut_k(k);
            let s = if k >= 2 {
                ns_cluster::silhouette_score(&dist, &labels)
            } else {
                0.0
            };
            (labels, s)
        }
        None => {
            let sel = select_k(&dist, &dendrogram, cfg.k_max, cfg.min_silhouette);
            (sel.labels, sel.score)
        }
    };
    // 4. Centroids + member distances + matching radius.
    let k = labels.iter().max().map(|m| m + 1).unwrap_or(1);
    let mut centroids = vec![vec![0.0; dim]; k];
    let mut counts = vec![0usize; k];
    for (f, &l) in zfeats.iter().zip(&labels) {
        counts[l] += 1;
        for (c, v) in centroids[l].iter_mut().zip(f) {
            *c += v;
        }
    }
    for (cen, &cnt) in centroids.iter_mut().zip(&counts) {
        for v in cen.iter_mut() {
            *v /= cnt.max(1) as f64;
        }
    }
    let member_distances: Vec<f64> = zfeats
        .iter()
        .zip(&labels)
        .map(|(f, &l)| vecops::euclidean(f, &centroids[l]))
        .collect();
    drop(linkage_span);

    // 5. Probe-space matching library: features of the first `probe_len`
    // steps of each segment, standardized and averaged per cluster.
    let probe_span = ns_obs::trace::span("probe_library");
    let probe_feats: Vec<Vec<f64>> = match cfg.probe_len {
        Some(p) => segments
            .par_iter()
            .map(|s| {
                let take = p.clamp(1, s.data.rows());
                segment_features(cfg, &s.data.slice_rows(0, take))
            })
            .collect(),
        None => feats.clone(),
    };
    let mut probe_feat_mean = vec![0.0; dim];
    let mut probe_feat_std = vec![0.0; dim];
    for j in 0..dim {
        let col: Vec<f64> = probe_feats.iter().map(|f| f[j]).collect();
        let (m, s) = (stats::mean(&col), stats::std_dev(&col));
        probe_feat_mean[j] = m;
        probe_feat_std[j] = if s < 1e-12 { 1.0 } else { s };
    }
    let probe_z: Vec<Vec<f64>> = probe_feats
        .iter()
        .map(|f| {
            f.iter()
                .zip(probe_feat_mean.iter().zip(&probe_feat_std))
                .map(|(&v, (&m, &s))| (v - m) / s)
                .collect()
        })
        .collect();
    let mut probe_centroids = vec![vec![0.0; dim]; k];
    {
        let mut pcounts = vec![0usize; k];
        for (f, &l) in probe_z.iter().zip(&labels) {
            pcounts[l] += 1;
            for (c, v) in probe_centroids[l].iter_mut().zip(f) {
                *c += v;
            }
        }
        for (cen, &cnt) in probe_centroids.iter_mut().zip(&pcounts) {
            for v in cen.iter_mut() {
                *v /= cnt.max(1) as f64;
            }
        }
    }
    // Contiguous row-major centroid library for the online matcher.
    let probe_centroids = Matrix::from_rows(&probe_centroids);
    // Matching radius: generous envelope of probe-space member distances.
    let radius = {
        let mut d: Vec<f64> = probe_z
            .iter()
            .zip(&labels)
            .map(|(f, &l)| vecops::euclidean(f, probe_centroids.row(l)))
            .collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let p95 = stats::quantile_sorted(&d, 0.95);
        (p95 * 2.0).max(1e-3)
    };
    drop(probe_span);
    let model = ClusterModel {
        feat_mean,
        feat_std,
        centroids,
        labels,
        member_distances,
        silhouette,
        probe_feat_mean,
        probe_feat_std,
        probe_centroids,
        match_radius: radius,
    };
    (model, feats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::Segment;

    /// Segments of two obviously different shapes.
    fn two_family_segments() -> Vec<Segment> {
        let mut segs = Vec::new();
        for i in 0..6 {
            // Family A: smooth sine, varying length.
            let t = 60 + i * 7;
            let data = Matrix::from_fn(t, 3, |r, c| {
                ((r as f64) * 0.2 + c as f64).sin() + 0.01 * i as f64
            });
            segs.push(Segment {
                node: 0,
                start: 0,
                end: t,
                data,
            });
        }
        for i in 0..6 {
            // Family B: high-frequency sawtooth with trend.
            let t = 50 + i * 9;
            let data = Matrix::from_fn(t, 3, |r, c| {
                ((r % 4) as f64) * 1.5 - 2.0 + 0.03 * r as f64 + c as f64 * 0.2 + 0.01 * i as f64
            });
            segs.push(Segment {
                node: 1,
                start: 0,
                end: t,
                data,
            });
        }
        segs
    }

    fn fast_cfg() -> CoarseConfig {
        CoarseConfig {
            catalog: FeatureCatalog::compact(),
            ..Default::default()
        }
    }

    #[test]
    fn separates_two_pattern_families_despite_length_variation() {
        let segs = two_family_segments();
        let (model, feats) = fit(&fast_cfg(), &segs);
        assert_eq!(model.k(), 2, "silhouette sweep: {:?}", model.silhouette);
        assert!(model.silhouette > 0.3);
        // All of family A shares a label; same for B; labels differ.
        let a = model.labels[0];
        assert!(model.labels[..6].iter().all(|&l| l == a));
        assert!(model.labels[6..].iter().all(|&l| l != a));
        assert_eq!(feats.len(), 12);
        assert_eq!(feats[0].len(), FeatureCatalog::compact().len() * 3);
    }

    #[test]
    fn matching_sends_new_segments_to_their_family() {
        let segs = two_family_segments();
        let cfg = fast_cfg();
        let (model, _) = fit(&cfg, &segs);
        // A fresh family-A-like segment.
        let probe = Matrix::from_fn(77, 3, |r, c| ((r as f64) * 0.2 + c as f64).sin());
        let f = segment_features(&cfg, &probe);
        let (cluster, dist) = model.match_pattern(&f);
        assert_eq!(cluster, model.labels[0]);
        assert!(
            model.is_match(dist),
            "distance {dist} vs radius {}",
            model.match_radius
        );
    }

    #[test]
    fn f32_probe_library_agrees_with_f64_matcher() {
        let segs = two_family_segments();
        let cfg = fast_cfg();
        let (model, _) = fit(&cfg, &segs);
        let lib = model.probe_library_f32();
        assert_eq!(lib.k(), model.k());
        let mut scratch = Vec::new();
        // Fresh members of both families plus the alien spike pattern:
        // cluster assignment and the is_match verdict must agree between
        // tiers, and distances must track closely.
        let probes = [
            Matrix::from_fn(77, 3, |r, c| ((r as f64) * 0.2 + c as f64).sin()),
            Matrix::from_fn(68, 3, |r, c| {
                ((r % 4) as f64) * 1.5 - 2.0 + 0.03 * r as f64 + c as f64 * 0.2
            }),
            Matrix::from_fn(60, 3, |r, _| if r % 10 == 0 { 500.0 } else { -300.0 }),
        ];
        for probe in &probes {
            let f = segment_features(&cfg, probe);
            let (c64, d64) = model.match_pattern(&f);
            let (c32, d32) = lib.match_pattern_into(&f, &mut scratch);
            assert_eq!(c32, c64);
            assert_eq!(model.is_match(d32), model.is_match(d64));
            let rel = (d32 - d64).abs() / d64.max(1e-12);
            assert!(rel < 1e-3, "f32 distance {d32} vs f64 {d64} (rel {rel})");
        }
    }

    #[test]
    fn alien_pattern_is_unmatched() {
        let segs = two_family_segments();
        let cfg = fast_cfg();
        let (model, _) = fit(&cfg, &segs);
        // A wild constant-spike pattern unlike either family.
        let probe = Matrix::from_fn(60, 3, |r, _| if r % 10 == 0 { 500.0 } else { -300.0 });
        let f = segment_features(&cfg, &probe);
        let (_, dist) = model.match_pattern(&f);
        assert!(!model.is_match(dist), "alien matched at distance {dist}");
    }

    #[test]
    fn force_k_overrides_selection() {
        let segs = two_family_segments();
        let cfg = CoarseConfig {
            force_k: Some(4),
            ..fast_cfg()
        };
        let (model, _) = fit(&cfg, &segs);
        assert_eq!(model.k(), 4);
    }

    #[test]
    fn nearest_members_returns_closest_first() {
        let segs = two_family_segments();
        let (model, _) = fit(&fast_cfg(), &segs);
        let members = model.nearest_members(model.labels[0], 3);
        assert_eq!(members.len(), 3);
        for w in members.windows(2) {
            assert!(model.member_distances[w[0]] <= model.member_distances[w[1]]);
        }
        // All returned members belong to the requested cluster.
        assert!(members.iter().all(|&i| model.labels[i] == model.labels[0]));
    }

    #[test]
    fn add_and_refine_cluster() {
        let segs = two_family_segments();
        let cfg = fast_cfg();
        let (mut model, _) = fit(&cfg, &segs);
        let probe = Matrix::from_fn(60, 3, |r, _| if r % 10 == 0 { 500.0 } else { -300.0 });
        let f = segment_features(&cfg, &probe);
        let k0 = model.k();
        let new_id = model.add_cluster(&f);
        assert_eq!(new_id, k0);
        let (c, d) = model.match_pattern(&f);
        assert_eq!(c, new_id);
        assert!(d < 1e-9, "own centroid distance {d}");
        // Refining toward a different vector moves the probe centroid.
        let before = model.probe_centroids.row(new_id).to_vec();
        let other = segment_features(&cfg, &segs[0].data);
        model.refine_centroid(new_id, &other, 0.5);
        assert_ne!(&before[..], model.probe_centroids.row(new_id));
    }

    #[test]
    fn single_segment_degenerates_to_one_cluster() {
        let seg = vec![Segment {
            node: 0,
            start: 0,
            end: 30,
            data: Matrix::from_fn(30, 2, |r, _| r as f64),
        }];
        let (model, _) = fit(&fast_cfg(), &seg);
        assert_eq!(model.k(), 1);
        assert_eq!(model.labels, vec![0]);
    }
}
