//! The four-step MTS preprocessing pipeline (paper §3.2):
//! **Cleaning** (linear interpolation of missing values) →
//! **Reduction** (semantic aggregation + Pearson-correlation pruning) →
//! **Standardization** (outlier-trimmed z-score with ±5 clipping) →
//! **Segmentation** (job-transition splitting).

use ns_linalg::matrix::Matrix;
use ns_linalg::stats;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Linearly interpolate NaN runs per column, in place. Leading/trailing
/// NaNs take the nearest observed value; all-NaN columns become zero.
pub fn interpolate_missing(data: &mut Matrix) {
    let (rows, cols) = data.shape();
    for c in 0..cols {
        // Collect column indices of observed values.
        let mut prev_obs: Option<usize> = None;
        let mut first_obs: Option<usize> = None;
        for r in 0..rows {
            if !data[(r, c)].is_nan() {
                if first_obs.is_none() {
                    first_obs = Some(r);
                }
                if let Some(p) = prev_obs {
                    if r > p + 1 {
                        let a = data[(p, c)];
                        let b = data[(r, c)];
                        let gap = (r - p) as f64;
                        for k in p + 1..r {
                            let t = (k - p) as f64 / gap;
                            data[(k, c)] = a + (b - a) * t;
                        }
                    }
                }
                prev_obs = Some(r);
            }
        }
        match (first_obs, prev_obs) {
            (Some(f), Some(l)) => {
                let head = data[(f, c)];
                for r in 0..f {
                    data[(r, c)] = head;
                }
                let tail = data[(l, c)];
                for r in l + 1..rows {
                    data[(r, c)] = tail;
                }
            }
            _ => {
                for r in 0..rows {
                    data[(r, c)] = 0.0;
                }
            }
        }
    }
}

/// Semantic aggregation: average raw metrics that share a group id
/// ("combining only semantically identical metrics"). Returns the
/// `T × n_groups` node-level matrix; group order follows group ids.
pub fn aggregate_groups(raw: &Matrix, groups: &[usize]) -> Matrix {
    assert_eq!(raw.cols(), groups.len(), "one group id per raw metric");
    let n_groups = groups.iter().max().map(|g| g + 1).unwrap_or(0);
    let mut counts = vec![0usize; n_groups];
    for &g in groups {
        counts[g] += 1;
    }
    let rows = raw.rows();
    let mut out = Matrix::zeros(rows, n_groups);
    for r in 0..rows {
        let src = raw.row(r);
        let dst = out.row_mut(r);
        for (j, &g) in groups.iter().enumerate() {
            dst[g] += src[j];
        }
        for (g, v) in dst.iter_mut().enumerate() {
            if counts[g] > 0 {
                *v /= counts[g] as f64;
            }
        }
    }
    out
}

/// Derive semantic group ids from raw metric names by stripping per-unit
/// suffixes (`_cpu3`, `_numa0`, `_mnt1`, `_eth0`, trailing digits after
/// known unit markers). Metrics reduced to the same base name share a
/// group. This is what a deployment against Prometheus metric names does.
pub fn groups_from_names(names: &[String]) -> Vec<usize> {
    use rustc_hash::FxHashMap;
    let strip = |name: &str| -> String {
        for marker in ["_cpu", "_numa", "_mnt", "_eth", "_core", "_if"] {
            if let Some(pos) = name.rfind(marker) {
                let suffix = &name[pos + marker.len()..];
                if !suffix.is_empty() && suffix.chars().all(|ch| ch.is_ascii_digit()) {
                    return name[..pos].to_string();
                }
            }
        }
        name.to_string()
    };
    let mut map: FxHashMap<String, usize> = FxHashMap::default();
    let mut out = Vec::with_capacity(names.len());
    for n in names {
        let base = strip(n);
        let next = map.len();
        let id = *map.entry(base).or_insert(next);
        out.push(id);
    }
    out
}

/// Pearson-correlation pruning (paper Eq. 1): among metric pairs with
/// `|r| ≥ threshold` on the fit data, keep only the first. Returns the
/// kept column indices (ordered).
pub fn prune_correlated(fit_data: &Matrix, threshold: f64) -> Vec<usize> {
    let cols = fit_data.cols();
    let col_data: Vec<Vec<f64>> = (0..cols).map(|c| fit_data.col(c)).collect();
    // Constant columns carry no pattern information: drop all but keep
    // none (they also break Pearson). The paper's aggregation retains
    // them; we drop them here as pure noise floors.
    let variable: Vec<usize> = (0..cols)
        .filter(|&c| stats::std_dev(&col_data[c]) > 1e-12)
        .collect();
    let mut kept: Vec<usize> = Vec::new();
    for &c in &variable {
        let dup = kept
            .par_iter()
            .any(|&k| stats::pearson(&col_data[k], &col_data[c]).abs() >= threshold);
        if !dup {
            kept.push(c);
        }
    }
    kept
}

/// Fitted standardization parameters (paper §3.2, Eq. 2): per-metric
/// mean/std computed with the top and bottom 5% trimmed, applied as a
/// z-score clipped to ±5.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Standardizer {
    pub mean: Vec<f64>,
    pub std: Vec<f64>,
    pub clip: f64,
}

impl Standardizer {
    pub fn fit(train: &Matrix, trim: f64) -> Self {
        let cols = train.cols();
        let (mean, std): (Vec<f64>, Vec<f64>) = (0..cols)
            .into_par_iter()
            .map(|c| {
                let col = train.col(c);
                let (m, s) = stats::trimmed_mean_std(&col, trim);
                (m, if s < 1e-9 { 1.0 } else { s })
            })
            .unzip();
        Self {
            mean,
            std,
            clip: 5.0,
        }
    }

    pub fn transform(&self, data: &Matrix) -> Matrix {
        let mut out = data.clone();
        for r in 0..out.rows() {
            for (j, v) in out.row_mut(r).iter_mut().enumerate() {
                *v = ((*v - self.mean[j]) / self.std[j]).clamp(-self.clip, self.clip);
            }
        }
        out
    }
}

/// One job segment of a node's preprocessed MTS.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Segment {
    pub node: usize,
    /// Start step in the node's timeline.
    pub start: usize,
    /// Exclusive end step.
    pub end: usize,
    /// `T × M` standardized data.
    pub data: Matrix,
}

impl Segment {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Split a node's matrix at the given transition points (sorted step
/// indices strictly inside `(0, rows)`), producing one segment per span.
/// Segments shorter than `min_len` are merged into their predecessor
/// when possible, otherwise dropped.
pub fn segment_at_transitions(
    node: usize,
    data: &Matrix,
    transitions: &[usize],
    min_len: usize,
) -> Vec<Segment> {
    let rows = data.rows();
    let mut cuts: Vec<usize> = vec![0];
    cuts.extend(transitions.iter().copied().filter(|&t| t > 0 && t < rows));
    cuts.push(rows);
    cuts.sort_unstable();
    cuts.dedup();
    let mut segs: Vec<Segment> = Vec::new();
    for w in cuts.windows(2) {
        let (s, e) = (w[0], w[1]);
        if e - s < min_len {
            // Merge into the previous segment when adjacent.
            if let Some(prev) = segs.last_mut() {
                if prev.end == s {
                    prev.end = e;
                    prev.data = data.slice_rows(prev.start, e);
                    continue;
                }
            }
            continue; // dropped
        }
        segs.push(Segment {
            node,
            start: s,
            end: e,
            data: data.slice_rows(s, e),
        });
    }
    segs
}

/// Chop a node's matrix into fixed equal-length chunks, ignoring job
/// boundaries (ablation C3).
pub fn segment_equal_length(node: usize, data: &Matrix, chunk: usize) -> Vec<Segment> {
    let rows = data.rows();
    let chunk = chunk.max(1);
    let mut segs = Vec::new();
    let mut s = 0;
    while s < rows {
        let e = (s + chunk).min(rows);
        if e - s >= chunk / 2 {
            segs.push(Segment {
                node,
                start: s,
                end: e,
                data: data.slice_rows(s, e),
            });
        }
        s = e;
    }
    segs
}

/// Detect cumulative-counter columns: (near-)monotone non-decreasing
/// series with a substantial total increase. Prometheus-style `*_total`
/// counters must be rate-converted before modelling — their raw values
/// grow without bound, so a z-score fitted on the training window drifts
/// out of range during the test window.
pub fn detect_counters(data: &Matrix) -> Vec<bool> {
    let (rows, cols) = data.shape();
    (0..cols)
        .map(|c| {
            if rows < 8 {
                return false;
            }
            let col = data.col(c);
            let mut non_decreasing = 0usize;
            for w in col.windows(2) {
                if w[1] + 1e-12 >= w[0] {
                    non_decreasing += 1;
                }
            }
            let frac = non_decreasing as f64 / (rows - 1) as f64;
            let rise = col[rows - 1] - col[0];
            let scale = stats::std_dev(&col);
            frac >= 0.98 && rise > 3.0 * scale.max(1e-12)
        })
        .collect()
}

/// Replace counter columns by their first differences (rates), keeping
/// the first row's rate at 0.
pub fn rate_convert(data: &mut Matrix, counters: &[bool]) {
    let (rows, cols) = data.shape();
    debug_assert_eq!(cols, counters.len());
    if rows == 0 {
        return;
    }
    for c in 0..cols {
        if !counters[c] {
            continue;
        }
        let mut prev = data[(0, c)];
        data[(0, c)] = 0.0;
        for r in 1..rows {
            let cur = data[(r, c)];
            data[(r, c)] = cur - prev;
            prev = cur;
        }
    }
}

/// The fitted preprocessing pipeline, bundling all four steps (plus the
/// counter rate-conversion any Prometheus-backed deployment needs).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Preprocessor {
    pub groups: Vec<usize>,
    /// Counter flags per aggregated (group-level) column.
    pub counters: Vec<bool>,
    pub kept: Vec<usize>,
    pub standardizer: Standardizer,
}

impl Preprocessor {
    /// Fit on a node sample's *training* rows: learns the counter set,
    /// the pruning set, and standardization statistics. `raw_train` must
    /// already be cleaned (or will be cleaned here — interpolation is
    /// idempotent).
    pub fn fit(raw_train: &Matrix, groups: &[usize], prune_threshold: f64, trim: f64) -> Self {
        let mut cleaned = raw_train.clone();
        interpolate_missing(&mut cleaned);
        let mut aggregated = aggregate_groups(&cleaned, groups);
        let counters = detect_counters(&aggregated);
        rate_convert(&mut aggregated, &counters);
        let kept = prune_correlated(&aggregated, prune_threshold);
        let reduced = aggregated.gather_cols(&kept);
        let standardizer = Standardizer::fit(&reduced, trim);
        Self {
            groups: groups.to_vec(),
            counters,
            kept,
            standardizer,
        }
    }

    /// Apply cleaning → aggregation → rate conversion → pruning →
    /// standardization.
    pub fn transform(&self, raw: &Matrix) -> Matrix {
        let mut cleaned = raw.clone();
        interpolate_missing(&mut cleaned);
        let mut aggregated = aggregate_groups(&cleaned, &self.groups);
        rate_convert(&mut aggregated, &self.counters);
        let reduced = aggregated.gather_cols(&self.kept);
        self.standardizer.transform(&reduced)
    }

    /// Width of the preprocessed output.
    pub fn out_dim(&self) -> usize {
        self.kept.len()
    }
}

/// Column-gather helper (kept local to avoid widening the Matrix API for
/// one call site).
trait GatherCols {
    fn gather_cols(&self, idx: &[usize]) -> Matrix;
}

impl GatherCols for Matrix {
    fn gather_cols(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), idx.len());
        for r in 0..self.rows() {
            let src = self.row(r);
            for (j, &c) in idx.iter().enumerate() {
                out[(r, j)] = src[c];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_fills_gaps_linearly() {
        let mut m = Matrix::from_rows(&[vec![1.0], vec![f64::NAN], vec![f64::NAN], vec![4.0]]);
        interpolate_missing(&mut m);
        assert_eq!(m.col(0), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn interpolation_extends_edges_and_handles_all_nan() {
        let mut m = Matrix::from_rows(&[
            vec![f64::NAN, f64::NAN],
            vec![5.0, f64::NAN],
            vec![f64::NAN, f64::NAN],
        ]);
        interpolate_missing(&mut m);
        assert_eq!(m.col(0), vec![5.0, 5.0, 5.0]);
        assert_eq!(m.col(1), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn aggregation_averages_group_members() {
        let raw = Matrix::from_rows(&[vec![1.0, 3.0, 10.0], vec![2.0, 4.0, 20.0]]);
        let groups = vec![0, 0, 1];
        let agg = aggregate_groups(&raw, &groups);
        assert_eq!(agg.shape(), (2, 2));
        assert_eq!(agg[(0, 0)], 2.0);
        assert_eq!(agg[(1, 0)], 3.0);
        assert_eq!(agg[(1, 1)], 20.0);
    }

    #[test]
    fn name_based_groups_strip_unit_suffixes() {
        let names: Vec<String> = vec![
            "cpu_seconds_user_cpu0".into(),
            "cpu_seconds_user_cpu1".into(),
            "memory_active_bytes".into(),
            "network_receive_bytes_total_eth0".into(),
            "network_receive_bytes_total_eth1".into(),
        ];
        let g = groups_from_names(&names);
        assert_eq!(g[0], g[1]);
        assert_eq!(g[3], g[4]);
        assert_ne!(g[0], g[2]);
        assert_ne!(g[2], g[3]);
    }

    #[test]
    fn pruning_removes_near_duplicates() {
        // col1 = 2*col0 (r = 1), col2 independent, col3 constant.
        let n = 100;
        let data = Matrix::from_fn(n, 4, |r, c| match c {
            0 => (r as f64 * 0.37).sin(),
            1 => 2.0 * (r as f64 * 0.37).sin() + 0.001,
            2 => ((r * r) % 17) as f64,
            _ => 3.0,
        });
        let kept = prune_correlated(&data, 0.99);
        assert_eq!(kept, vec![0, 2]);
    }

    #[test]
    fn standardizer_resists_outliers_and_clips() {
        let mut col = vec![10.0; 200];
        col[0] = 1e6;
        let data = Matrix::from_vec(200, 1, col);
        let s = Standardizer::fit(&data, 0.05);
        assert!((s.mean[0] - 10.0).abs() < 1e-6);
        let out = s.transform(&data);
        // Outlier clipped to +5.
        assert_eq!(out[(0, 0)], 5.0);
        assert!(out[(1, 0)].abs() < 1e-6);
    }

    #[test]
    fn segmentation_splits_at_transitions() {
        let data = Matrix::from_fn(100, 2, |r, _| r as f64);
        let segs = segment_at_transitions(3, &data, &[30, 70], 5);
        assert_eq!(segs.len(), 3);
        assert_eq!((segs[0].start, segs[0].end), (0, 30));
        assert_eq!((segs[1].start, segs[1].end), (30, 70));
        assert_eq!((segs[2].start, segs[2].end), (70, 100));
        assert_eq!(segs[1].data.rows(), 40);
        assert_eq!(segs[1].data[(0, 0)], 30.0);
        assert_eq!(
            segs.iter().map(|s| s.node).collect::<Vec<_>>(),
            vec![3, 3, 3]
        );
    }

    #[test]
    fn short_spans_merge_into_predecessor() {
        let data = Matrix::from_fn(50, 1, |r, _| r as f64);
        // Transition at 48 creates a 2-long tail which merges back.
        let segs = segment_at_transitions(0, &data, &[48], 5);
        assert_eq!(segs.len(), 1);
        assert_eq!((segs[0].start, segs[0].end), (0, 50));
    }

    #[test]
    fn equal_length_chop_for_c3() {
        let data = Matrix::from_fn(95, 1, |r, _| r as f64);
        let segs = segment_equal_length(1, &data, 30);
        // Spans 0–30, 30–60, 60–90 survive; the 5-long tail (< chunk/2)
        // is dropped.
        assert_eq!(segs.len(), 3);
        let lens: Vec<usize> = segs.iter().map(|s| s.len()).collect();
        assert!(lens.iter().all(|&l| l == 30));
    }

    #[test]
    fn full_pipeline_roundtrip() {
        // Two groups of correlated raw metrics + NaN holes; the fitted
        // pipeline must produce a clean standardized matrix.
        let raw = Matrix::from_fn(120, 6, |r, c| {
            let base = ((r as f64) * 0.2 + (c / 3) as f64).sin();
            if r == 50 && c == 2 {
                f64::NAN
            } else {
                base * (1.0 + c as f64 * 0.1)
            }
        });
        let groups = vec![0, 0, 0, 1, 1, 1];
        let pp = Preprocessor::fit(&raw, &groups, 0.99, 0.05);
        let out = pp.transform(&raw);
        assert_eq!(out.rows(), 120);
        assert!(out.cols() >= 1 && out.cols() <= 2);
        assert!(out
            .as_slice()
            .iter()
            .all(|v| v.is_finite() && v.abs() <= 5.0));
    }
}
