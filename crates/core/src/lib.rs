//! `nodesentry-core` — the paper's primary contribution.
//!
//! NodeSentry is an unsupervised anomaly-detection framework for compute
//! nodes of large-scale HPC systems (SC '25). The pipeline:
//!
//! * [`preprocess`] — §3.2's four steps: missing-value interpolation,
//!   semantic aggregation + Pearson pruning (≈10× reduction),
//!   outlier-trimmed ±5-clipped standardization, and job-transition
//!   segmentation.
//! * [`coarse`] — §3.3's coarse-grained clustering: variable-length
//!   segments become fixed-width 134-feature-per-metric vectors,
//!   clustered by HAC under Euclidean distance with the silhouette
//!   coefficient selecting the cluster count automatically.
//! * [`sharing`] — §3.4's fine-grained model sharing: a Transformer
//!   whose dense FFN is replaced by a sparse top-k MoE layer, trained on
//!   the K segments nearest each centroid with segment-aware positional
//!   encoding and a MAC-weighted WMSE loss.
//! * [`detector`] — §3.5's online phase: post-transition pattern
//!   matching against the centroid library, reconstruction-error anomaly
//!   scores, sliding-window k-sigma thresholds, incremental fine-tuning
//!   for matched new patterns and cluster spawning for unmatched ones —
//!   plus the C1–C5 ablation variants of §4.4.

pub mod coarse;
pub mod detector;
pub mod preprocess;
pub mod sharing;
pub mod tick;

pub use coarse::{ClusterModel, CoarseConfig};
pub use detector::{NodeInput, NodeSentry, NodeSentryConfig, NodeSource, Variant};
pub use preprocess::{Preprocessor, Segment, Standardizer};
pub use sharing::{SharedModel, SharingConfig};
pub use tick::Tick;
