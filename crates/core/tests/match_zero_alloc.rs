//! Proof of the streaming match path's zero-allocation claim: a counting
//! global allocator observes `standardize_probe_into` +
//! `match_pattern_into` against a warm scratch vector and must see
//! **zero** allocations steady-state. (Feature extraction upstream of the
//! matcher has its own scratch story in `ns-features`; this test covers
//! the standardize-and-nearest-centroid kernel the streaming engine runs
//! per probe.)
//!
//! Lives in its own integration-test binary so the `#[global_allocator]`
//! swap cannot perturb any other test.

use nodesentry_core::coarse::ClusterModel;
use ns_linalg::matrix::Matrix;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

struct Counting;

// SAFETY: delegates verbatim to `System`; only adds a counter.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocations(f: impl FnOnce()) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// A hand-built library: 12 centroids over 96 probe features, constructed
/// directly so the test does not depend on the fitting pipeline.
fn library(k: usize, dim: usize) -> ClusterModel {
    let centroids = Matrix::from_fn(k, dim, |r, c| ((r * 13 + c * 7) as f64 * 0.31).sin() * 2.0);
    ClusterModel {
        feat_mean: vec![0.0; dim],
        feat_std: vec![1.0; dim],
        centroids: (0..k).map(|r| centroids.row(r).to_vec()).collect(),
        labels: (0..k).collect(),
        member_distances: vec![0.0; k],
        silhouette: 0.5,
        probe_feat_mean: vec![0.25; dim],
        probe_feat_std: vec![1.5; dim],
        probe_centroids: centroids,
        match_radius: 10.0,
    }
}

#[test]
fn warm_match_path_allocates_nothing() {
    let (k, dim) = (12, 96);
    let model = library(k, dim);
    let probes: Vec<Vec<f64>> = (0..8)
        .map(|p| {
            (0..dim)
                .map(|c| ((p * 11 + c * 5) as f64 * 0.23).cos() * 2.0)
                .collect()
        })
        .collect();

    let mut scratch = Vec::new();
    // Warm-up: first call sizes the scratch vector.
    let warm = model.match_pattern_into(&probes[0], &mut scratch);
    // Sanity: the scratch variant agrees with the allocating API.
    assert_eq!(warm, model.match_pattern(&probes[0]));

    let mut sink = (0usize, 0.0f64);
    let n = allocations(|| {
        for _ in 0..8 {
            for p in &probes {
                let (c, d) = model.match_pattern_into(p, &mut scratch);
                sink.0 ^= c;
                sink.1 += d;
            }
        }
    });
    std::hint::black_box(sink);
    assert_eq!(n, 0, "warm steady-state match must not allocate");
}

#[test]
fn scratch_variants_bit_identical_to_allocating_api() {
    let model = library(7, 33); // odd width exercises the remainder path
    let mut scratch = Vec::new();
    for p in 0..10 {
        let probe: Vec<f64> = (0..33)
            .map(|c| ((p * 3 + c) as f64 * 0.41).sin() * 3.0)
            .collect();
        let (ci, di) = model.match_pattern_into(&probe, &mut scratch);
        let (ca, da) = model.match_pattern(&probe);
        assert_eq!(ci, ca);
        assert_eq!(di.to_bits(), da.to_bits());
        assert_eq!(scratch, model.standardize_probe(&probe));
    }
}
