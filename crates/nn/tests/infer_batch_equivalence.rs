//! Differential test: [`InferenceSession::forward_batch`] over B stacked
//! windows must be bit-identical to B independent
//! [`InferenceSession::forward`] calls, for random shapes, batch sizes and
//! block kinds — and [`InferenceSession::score_windows_batch`] must
//! reproduce a loop of `score_window` calls to the bit.

use ns_linalg::matrix::Matrix;
use ns_nn::{
    sinusoidal_pe_at, BlockKind, InferenceSession, ParamStore, ReconstructionTransformer,
    TransformerConfig, WindowSpec,
};
use proptest::prelude::*;

fn build_model(
    seed: u64,
    input_dim: usize,
    heads: usize,
    n_layers: usize,
    block: BlockKind,
) -> (ParamStore, ReconstructionTransformer) {
    let d_model = heads * 4;
    let mut params = ParamStore::new(seed);
    let model = ReconstructionTransformer::new(
        &mut params,
        TransformerConfig {
            input_dim,
            d_model,
            n_heads: heads,
            n_layers,
            hidden: d_model * 2,
            block,
            aux_weight: 0.01,
        },
    );
    (params, model)
}

fn window(t: usize, m: usize, phase: f64) -> Matrix {
    Matrix::from_fn(t, m, |r, c| {
        ((r as f64 * 0.37 + c as f64 * 1.3 + phase) * 0.9).sin()
    })
}

fn pe_of(t: usize, d_model: usize) -> Matrix {
    let positions: Vec<f64> = (0..t).map(|r| r as f64 * 512.0 / t as f64).collect();
    sinusoidal_pe_at(&positions, d_model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn forward_batch_bit_identical_to_independent_forwards(
        seed in 0u64..1_000_000,
        input_dim in 1usize..6,
        heads in 1usize..4,
        n_layers in 1usize..3,
        dense in any::<bool>(),
        n_experts in 2usize..4,
        top_k in 1usize..3,
        lens in prop::collection::vec(1usize..20, 1..7),
        phase in -3.0f64..3.0,
    ) {
        let block = if dense {
            BlockKind::Dense
        } else {
            BlockKind::Moe { n_experts, top_k: top_k.min(n_experts) }
        };
        let (params, model) = build_model(seed, input_dim, heads, n_layers, block);
        let d_model = heads * 4;

        let inputs: Vec<(Matrix, Matrix)> = lens
            .iter()
            .enumerate()
            .map(|(b, &t)| (window(t, input_dim, phase + b as f64 * 0.71), pe_of(t, d_model)))
            .collect();

        // Reference: B independent single-window forwards.
        let mut single = InferenceSession::new();
        let singles: Vec<Matrix> = inputs
            .iter()
            .map(|(x, pe)| single.forward(&params, &model, x, pe).clone())
            .collect();

        // Batched: run twice through one session so warm, previously
        // batch-shaped scratch is exercised too.
        let mut batched = InferenceSession::new();
        let refs: Vec<(&Matrix, &Matrix)> = inputs.iter().map(|(x, pe)| (x, pe)).collect();
        for round in 0..2 {
            let (out, offsets) = batched.forward_batch(&params, &model, &refs);
            prop_assert_eq!(offsets.len(), inputs.len() + 1);
            prop_assert_eq!(out.rows(), *offsets.last().unwrap());
            for (b, want) in singles.iter().enumerate() {
                let (r0, r1) = (offsets[b], offsets[b + 1]);
                prop_assert_eq!(r1 - r0, want.rows(), "round {} window {}", round, b);
                for r in 0..want.rows() {
                    for (i, (a, w)) in out.row(r0 + r).iter().zip(want.row(r)).enumerate() {
                        prop_assert_eq!(
                            a.to_bits(), w.to_bits(),
                            "round {} window {} row {} col {}: {} vs {}",
                            round, b, r, i, a, w
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn score_windows_batch_bit_identical_to_score_window_loop(
        seed in 0u64..1_000_000,
        input_dim in 1usize..5,
        heads in 1usize..3,
        dense in any::<bool>(),
        series_lens in prop::collection::vec(2usize..30, 1..5),
        win in 3usize..10,
        phase in -2.0f64..2.0,
    ) {
        let block = if dense {
            BlockKind::Dense
        } else {
            BlockKind::Moe { n_experts: 3, top_k: 1 }
        };
        let (params, model) = build_model(seed, input_dim, heads, 2, block);
        let weights: Vec<f64> = (0..input_dim).map(|i| 1.0 / (1.0 + i as f64 * 0.3)).collect();

        // One window tiling per series, exactly as score_series_raw does.
        let series: Vec<Matrix> = series_lens
            .iter()
            .enumerate()
            .map(|(s, &t)| window(t, input_dim, phase + s as f64))
            .collect();
        let pos_fns: Vec<_> = series
            .iter()
            .map(|d| {
                let t = d.rows();
                move |r: usize| r as f64 * 512.0 / t as f64
            })
            .collect();
        let mut specs: Vec<WindowSpec> = Vec::new();
        for (si, data) in series.iter().enumerate() {
            let t = data.rows();
            let w = win.min(t).max(1);
            let mut starts: Vec<usize> = (0..t.saturating_sub(w - 1)).step_by(w).collect();
            if starts.is_empty() {
                starts.push(0);
            }
            if let Some(&last) = starts.last() {
                if last + w < t {
                    starts.push(t - w);
                }
            }
            for s in starts {
                specs.push(WindowSpec {
                    data,
                    start: s,
                    end: s + w,
                    pos_of: &pos_fns[si],
                    weights: &weights,
                });
            }
        }

        // Reference: a fresh session scoring each window alone.
        let mut single = InferenceSession::new();
        let mut want: Vec<f64> = Vec::new();
        for sp in &specs {
            want.extend_from_slice(single.score_window(
                &params, &model, sp.data, sp.start, sp.end, sp.pos_of, sp.weights,
            ));
        }

        let mut batched = InferenceSession::new();
        let got = batched.score_windows_batch(&params, &model, &specs);
        prop_assert_eq!(got.len(), want.len());
        for (i, (a, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(a.to_bits(), w.to_bits(), "err {}: {} vs {}", i, a, w);
        }
    }
}

/// Degenerate shapes the proptest ranges skip.
#[test]
fn forward_batch_edge_cases() {
    let (params, model) = build_model(
        7,
        3,
        2,
        1,
        BlockKind::Moe {
            n_experts: 2,
            top_k: 1,
        },
    );
    let mut sess = InferenceSession::new();

    // Empty batch: empty output, offsets = [0].
    let (out, offsets) = sess.forward_batch(&params, &model, &[]);
    assert_eq!(out.rows(), 0);
    assert_eq!(offsets, &[0]);

    // Batch of one must equal the single forward bitwise.
    let x = window(9, 3, 0.4);
    let pe = pe_of(9, 8);
    let mut single = InferenceSession::new();
    let want = single.forward(&params, &model, &x, &pe).clone();
    let (out, offsets) = sess.forward_batch(&params, &model, &[(&x, &pe)]);
    assert_eq!(offsets, &[0, 9]);
    for (a, b) in out.as_slice().iter().zip(want.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Empty spec list scores to an empty slice.
    let got = sess.score_windows_batch(&params, &model, &[]);
    assert!(got.is_empty());
}
