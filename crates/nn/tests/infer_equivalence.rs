//! Differential test: the tape-free [`InferenceSession`] forward must be
//! bit-identical to the taped [`Graph`] forward for every reachable
//! configuration — random shapes, seeds, window contents and block kinds,
//! with scratch reused (warm) across randomly varying window sizes.

use ns_linalg::matrix::Matrix;
use ns_nn::{
    sinusoidal_pe_at, BlockKind, Graph, InferenceSession, ParamStore, ReconstructionTransformer,
    TransformerConfig,
};
use proptest::prelude::*;

fn taped_forward(
    params: &ParamStore,
    model: &ReconstructionTransformer,
    x: &Matrix,
    pe: &Matrix,
) -> Matrix {
    let mut g = Graph::new(params);
    let xn = g.input(x.clone());
    let pn = g.input(pe.clone());
    let (recon, _) = model.forward(&mut g, xn, pn);
    g.value(recon).clone()
}

fn assert_bits_eq(fast: &Matrix, taped: &Matrix, label: &str) {
    assert_eq!(fast.shape(), taped.shape(), "{label}: shape");
    for (i, (a, b)) in fast.as_slice().iter().zip(taped.as_slice()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: element {i} differs: {a} vs {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn session_forward_bit_identical_to_tape(
        seed in 0u64..1_000_000,
        input_dim in 1usize..6,
        heads in 1usize..4,
        n_layers in 1usize..3,
        dense in any::<bool>(),
        n_experts in 2usize..4,
        top_k in 1usize..3,
        t1 in 2usize..24,
        t2 in 2usize..24,
        phase in -3.0f64..3.0,
    ) {
        let d_model = heads * 4; // keep d_model divisible by n_heads
        let block = if dense {
            BlockKind::Dense
        } else {
            BlockKind::Moe { n_experts, top_k: top_k.min(n_experts) }
        };
        let mut params = ParamStore::new(seed);
        let model = ReconstructionTransformer::new(
            &mut params,
            TransformerConfig {
                input_dim,
                d_model,
                n_heads: heads,
                n_layers,
                hidden: d_model * 2,
                block,
                aux_weight: 0.01,
            },
        );
        let mut sess = InferenceSession::new();
        // Two windows of different lengths through ONE session: the second
        // pass exercises warm-scratch reshaping, not just cold buffers.
        for (round, t) in [t1, t2].into_iter().enumerate() {
            let x = Matrix::from_fn(t, input_dim, |r, c| {
                ((r as f64 * 0.37 + c as f64 * 1.3 + phase) * 0.9).sin()
            });
            let positions: Vec<f64> = (0..t).map(|r| r as f64 * 512.0 / t as f64).collect();
            let pe = sinusoidal_pe_at(&positions, d_model);
            let taped = taped_forward(&params, &model, &x, &pe);
            let fast = sess.forward(&params, &model, &x, &pe);
            assert_bits_eq(fast, &taped, &format!("round {round}, t={t}"));
        }
    }
}
