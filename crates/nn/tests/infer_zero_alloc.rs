//! Proof of the fast path's zero-allocation claim: a counting global
//! allocator observes a warm [`InferenceSession`] scoring windows and
//! must see **zero** allocations during the steady-state forward.
//!
//! Lives in its own integration-test binary so the `#[global_allocator]`
//! swap cannot perturb any other test.

use ns_linalg::matrix::Matrix;
use ns_nn::{
    sinusoidal_pe_at, BlockKind, InferenceSession, ParamStore, ReconstructionTransformer,
    TransformerConfig,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

struct Counting;

// SAFETY: delegates verbatim to `System`; only adds a counter.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocations(f: impl FnOnce()) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn warm_session_forward_allocates_nothing() {
    // Rows stay below the matmul kernels' parallel threshold (32) so the
    // forward runs on this thread — rayon task spawning would allocate
    // outside the code under test.
    let t = 16;
    for block in [
        BlockKind::Dense,
        BlockKind::Moe {
            n_experts: 3,
            top_k: 1,
        },
    ] {
        let mut params = ParamStore::new(7);
        let model = ReconstructionTransformer::new(
            &mut params,
            TransformerConfig {
                input_dim: 4,
                d_model: 8,
                n_heads: 2,
                n_layers: 2,
                hidden: 16,
                block,
                aux_weight: 0.01,
            },
        );
        let x = Matrix::from_fn(t, 4, |r, c| ((r as f64 * 0.4 + c as f64) * 0.7).sin());
        let positions: Vec<f64> = (0..t).map(|r| r as f64 * 512.0 / t as f64).collect();
        let pe = sinusoidal_pe_at(&positions, 8);
        let weights = vec![1.0; 4];

        let mut sess = InferenceSession::new();
        // Warm-up: first calls size the scratch and build the prepack.
        sess.forward(&params, &model, &x, &pe);
        sess.score_window(&params, &model, &x, 0, t, |r| r as f64, &weights);

        let n = allocations(|| {
            for _ in 0..8 {
                sess.forward(&params, &model, &x, &pe);
                sess.score_window(&params, &model, &x, 0, t, |r| r as f64, &weights);
            }
        });
        assert_eq!(
            n, 0,
            "warm steady-state forward must not allocate ({block:?})"
        );
    }
}
