//! Finite-difference gradient verification used throughout the test suite.

use crate::params::{ParamId, ParamStore};
use crate::tape::{Graph, NodeId};
use ns_linalg::matrix::Matrix;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Build a parameter store with random values at the given shapes, run the
/// provided loss builder, and compare analytic gradients against central
/// finite differences for every scalar of every parameter.
///
/// Panics with a descriptive message on mismatch. The builder must be a
/// pure function of the parameter values.
pub fn check_gradients(
    seed: u64,
    shapes: &[(usize, usize)],
    build: impl Fn(&mut Graph<'_>, &[ParamId]) -> NodeId,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut params = ParamStore::new(seed);
    let ids: Vec<ParamId> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(r, c))| {
            let m = Matrix::from_fn(r, c, |_, _| rng.gen_range(-0.9..0.9));
            params.add(format!("p{i}"), m)
        })
        .collect();

    // Analytic gradients.
    let analytic = {
        let mut g = Graph::new(&params);
        let loss = build(&mut g, &ids);
        g.backward(loss)
    };

    // Finite differences.
    let h = 1e-5;
    for &id in &ids {
        let (rows, cols) = params.get(id).shape();
        for r in 0..rows {
            for c in 0..cols {
                let orig = params.get(id)[(r, c)];
                params.get_mut(id)[(r, c)] = orig + h;
                let fp = {
                    let mut g = Graph::new(&params);
                    let loss = build(&mut g, &ids);
                    g.scalar(loss)
                };
                params.get_mut(id)[(r, c)] = orig - h;
                let fm = {
                    let mut g = Graph::new(&params);
                    let loss = build(&mut g, &ids);
                    g.scalar(loss)
                };
                params.get_mut(id)[(r, c)] = orig;
                let numeric = (fp - fm) / (2.0 * h);
                let got = analytic.get(id)[(r, c)];
                let tol = 1e-4 * (1.0 + numeric.abs().max(got.abs()));
                assert!(
                    (numeric - got).abs() <= tol,
                    "grad mismatch at param {id} ({r},{c}): numeric {numeric:.8} vs analytic {got:.8}"
                );
            }
        }
    }
}
