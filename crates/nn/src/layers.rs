//! Reusable layers: Linear, LayerNorm, position-wise FeedForward,
//! multi-head self-attention, and sinusoidal positional encodings
//! (including the paper's segment-aware variant, built in
//! `nodesentry-core` on top of [`sinusoidal_pe`]).

use crate::params::{ParamId, ParamStore};
use crate::tape::{Graph, NodeId};
use ns_linalg::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Fully-connected layer `y = x W + b`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(params: &mut ParamStore, name: &str, in_dim: usize, out_dim: usize) -> Self {
        let w = params.xavier(format!("{name}.w"), in_dim, out_dim);
        let b = params.zeros(format!("{name}.b"), 1, out_dim);
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Forward over a `n × in_dim` node.
    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        let w = g.param(self.w);
        let b = g.param(self.b);
        let xw = g.matmul(x, w);
        g.add_row_broadcast(xw, b)
    }

    /// Forward where `x` is structurally sparse (post-ReLU activations):
    /// bit-identical to [`Linear::forward`] for finite inputs, but the
    /// matmul skips the zero rows' work entirely.
    pub fn forward_sparse_input(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        let w = g.param(self.w);
        let b = g.param(self.b);
        let xw = g.matmul_sparse_lhs(x, w);
        g.add_row_broadcast(xw, b)
    }
}

/// Layer normalisation with learnable gain and shift.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LayerNorm {
    pub gamma: ParamId,
    pub beta: ParamId,
}

impl LayerNorm {
    pub fn new(params: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = params.constant(format!("{name}.gamma"), 1, dim, 1.0);
        let beta = params.zeros(format!("{name}.beta"), 1, dim);
        Self { gamma, beta }
    }

    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        let gamma = g.param(self.gamma);
        let beta = g.param(self.beta);
        g.layer_norm(x, gamma, beta)
    }
}

/// Position-wise feed-forward network `relu(x W1 + b1) W2 + b2` — a
/// Transformer FFN block, and the expert network inside the MoE layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeedForward {
    pub lin1: Linear,
    pub lin2: Linear,
}

impl FeedForward {
    pub fn new(params: &mut ParamStore, name: &str, dim: usize, hidden: usize) -> Self {
        Self {
            lin1: Linear::new(params, &format!("{name}.ff1"), dim, hidden),
            lin2: Linear::new(params, &format!("{name}.ff2"), hidden, dim),
        }
    }

    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        let h = self.lin1.forward(g, x);
        let a = g.relu(h);
        // ReLU output is ~half exact zeros, so lin2 takes the
        // sparsity-skipping kernel (bit-identical on finite data).
        self.lin2.forward_sparse_input(g, a)
    }
}

/// Multi-head self-attention over a `T × d_model` sequence.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    pub n_heads: usize,
    pub d_model: usize,
}

impl MultiHeadAttention {
    pub fn new(params: &mut ParamStore, name: &str, d_model: usize, n_heads: usize) -> Self {
        assert!(
            d_model.is_multiple_of(n_heads),
            "d_model must divide by n_heads"
        );
        Self {
            wq: Linear::new(params, &format!("{name}.wq"), d_model, d_model),
            wk: Linear::new(params, &format!("{name}.wk"), d_model, d_model),
            wv: Linear::new(params, &format!("{name}.wv"), d_model, d_model),
            wo: Linear::new(params, &format!("{name}.wo"), d_model, d_model),
            n_heads,
            d_model,
        }
    }

    /// Full (non-causal) self-attention: every token attends to every
    /// token — appropriate for reconstruction models.
    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        let q = self.wq.forward(g, x);
        let k = self.wk.forward(g, x);
        let v = self.wv.forward(g, x);
        let dh = self.d_model / self.n_heads;
        let scale = 1.0 / (dh as f64).sqrt();
        let mut heads = Vec::with_capacity(self.n_heads);
        for h in 0..self.n_heads {
            let lo = h * dh;
            let hi = lo + dh;
            let qh = g.slice_cols(q, lo, hi);
            let kh = g.slice_cols(k, lo, hi);
            let vh = g.slice_cols(v, lo, hi);
            let kt = g.transpose(kh);
            let scores = g.matmul(qh, kt);
            let scaled = g.scale(scores, scale);
            let attn = g.softmax_rows(scaled);
            heads.push(g.matmul(attn, vh));
        }
        let cat = g.concat_cols(&heads);
        self.wo.forward(g, cat)
    }
}

/// Standard sinusoidal positional encoding table (`len × d_model`).
///
/// `offset` shifts the position index — the hook the paper's segment-aware
/// encoding uses to distinguish positions *across* different segments
/// stitched into one training sequence (§3.4).
pub fn sinusoidal_pe(len: usize, d_model: usize, offset: usize) -> Matrix {
    let positions: Vec<f64> = (0..len).map(|p| (p + offset) as f64).collect();
    sinusoidal_pe_at(&positions, d_model)
}

/// Sinusoidal positional encoding evaluated at arbitrary (possibly
/// fractional) positions — used for the *relative* segment-aware
/// encoding, where a row's position index is its fraction of the
/// segment length rather than its absolute step.
pub fn sinusoidal_pe_at(positions: &[f64], d_model: usize) -> Matrix {
    Matrix::from_fn(positions.len(), d_model, |row, i| {
        sinusoidal_pe_value(positions[row], i, d_model)
    })
}

/// One element of the sinusoidal encoding at (fractional) position `p`,
/// dimension `i` of `d_model`. Single source of truth shared by
/// [`sinusoidal_pe_at`] and the tape-free
/// [`crate::infer::InferenceSession`], so both produce bit-identical
/// tables.
#[inline]
pub fn sinusoidal_pe_value(p: f64, i: usize, d_model: usize) -> f64 {
    let div = (10000.0_f64).powf((2 * (i / 2)) as f64 / d_model as f64);
    if i.is_multiple_of(2) {
        (p / div).sin()
    } else {
        (p / div).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use crate::optim::Adam;

    #[test]
    fn linear_shapes_and_bias() {
        let mut params = ParamStore::new(1);
        let lin = Linear::new(&mut params, "l", 4, 2);
        // Zero weights → output equals bias.
        params.get_mut(lin.w).map_inplace(|_| 0.0);
        params
            .get_mut(lin.b)
            .row_mut(0)
            .copy_from_slice(&[7.0, -3.0]);
        let mut g = Graph::new(&params);
        let x = g.input(Matrix::filled(5, 4, 1.0));
        let y = lin.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (5, 2));
        assert_eq!(g.value(y)[(4, 0)], 7.0);
        assert_eq!(g.value(y)[(0, 1)], -3.0);
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut params = ParamStore::new(2);
        let ln = LayerNorm::new(&mut params, "ln", 8);
        let mut g = Graph::new(&params);
        let x = g.input(Matrix::from_fn(3, 8, |r, c| {
            (r * 8 + c) as f64 * 3.0 + 100.0
        }));
        let y = ln.forward(&mut g, x);
        for r in 0..3 {
            let row = g.value(y).row(r);
            let mean: f64 = row.iter().sum::<f64>() / 8.0;
            let var: f64 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 8.0;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn attention_output_shape_preserved() {
        let mut params = ParamStore::new(3);
        let mha = MultiHeadAttention::new(&mut params, "attn", 12, 3);
        let mut g = Graph::new(&params);
        let x = g.input(Matrix::from_fn(7, 12, |r, c| ((r + c) as f64 * 0.1).sin()));
        let y = mha.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (7, 12));
        assert!(g.value(y).as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn attention_gradcheck_small() {
        // Drive the attention entirely from a learnable input embedding to
        // verify gradients flow through softmax/matmul/slice/concat.
        check_gradients(31, &[(3, 4)], |g, ps| {
            let mut params_local = ParamStore::new(99);
            let mha = MultiHeadAttention::new(&mut params_local, "a", 4, 2);
            // Bind the layer's params as constants in this graph (we check
            // only the input gradient here).
            let x = g.param(ps[0]);
            let wq = g.input(params_local.get(mha.wq.w).clone());
            let q = g.matmul(x, wq);
            let kt = g.transpose(q);
            let scores = g.matmul(q, kt);
            let sm = g.softmax_rows(scores);
            let out = g.matmul(sm, x);
            let sq = g.mul(out, out);
            g.mean_all(sq)
        });
    }

    #[test]
    fn ffn_trains_to_fit_simple_function() {
        // Regression sanity: FFN should fit y = relu-ish mapping quickly.
        let mut params = ParamStore::new(5);
        let ff = FeedForward::new(&mut params, "ff", 2, 16);
        let inputs = Matrix::from_fn(8, 2, |r, c| ((r * 2 + c) as f64 / 8.0) - 0.5);
        let targets = Matrix::from_fn(8, 2, |r, c| {
            let v = ((r * 2 + c) as f64 / 8.0) - 0.5;
            v * v
        });
        let mut opt = Adam::new(0.01);
        let mut last = f64::INFINITY;
        for _ in 0..300 {
            let (loss, grads) = {
                let mut g = Graph::new(&params);
                let x = g.input(inputs.clone());
                let t = g.input(targets.clone());
                let y = ff.forward(&mut g, x);
                let l = g.mse(y, t);
                (g.scalar(l), g.backward(l))
            };
            opt.step(&mut params, &grads);
            last = loss;
        }
        assert!(last < 1e-3, "ffn failed to fit: {last}");
    }

    #[test]
    fn positional_encoding_properties() {
        let pe = sinusoidal_pe(50, 16, 0);
        assert_eq!(pe.shape(), (50, 16));
        // Position 0: sin(0)=0 on even dims, cos(0)=1 on odd dims.
        for i in 0..16 {
            let want = if i % 2 == 0 { 0.0 } else { 1.0 };
            assert!((pe[(0, i)] - want).abs() < 1e-12);
        }
        // All entries bounded.
        assert!(pe.as_slice().iter().all(|v| v.abs() <= 1.0));
        // Offset shifts rows: pe(offset=5) row0 == pe(0) row5.
        let shifted = sinusoidal_pe(10, 16, 5);
        for i in 0..16 {
            assert!((shifted[(0, i)] - pe[(5, i)]).abs() < 1e-12);
        }
    }

    #[test]
    fn distinct_positions_have_distinct_encodings() {
        let pe = sinusoidal_pe(100, 32, 0);
        for a in (0..100).step_by(17) {
            for b in (a + 1..100).step_by(13) {
                let d: f64 = pe
                    .row(a)
                    .iter()
                    .zip(pe.row(b))
                    .map(|(x, y)| (x - y).abs())
                    .sum();
                assert!(d > 1e-6, "positions {a} and {b} collide");
            }
        }
    }
}
