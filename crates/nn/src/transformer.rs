//! Transformer encoder with a sparse-MoE (or dense-FFN) position-wise
//! block — the model-sharing backbone of the paper (§3.4, Fig. 3).
//!
//! The input MTS is tokenised (one token per timestamp, a vector of metric
//! values), passed through positional encoding, `n_layers` of
//! {self-attention → add&norm → MoE/FFN → add&norm}, and a linear decoder
//! reconstructs the original tokens. Reconstruction error is the anomaly
//! score.

use crate::layers::{FeedForward, LayerNorm, Linear, MultiHeadAttention};
use crate::moe::MoeLayer;
use crate::params::ParamStore;
use crate::tape::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Position-wise block type: the paper's MoE, or the dense FFN used by the
/// C5 ablation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum BlockKind {
    /// Sparse MoE with `n_experts` experts and `top_k` routing.
    Moe { n_experts: usize, top_k: usize },
    /// Dense feed-forward (ablation C5).
    Dense,
}

/// One encoder layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EncoderLayer {
    pub attn: MultiHeadAttention,
    pub norm1: LayerNorm,
    pub norm2: LayerNorm,
    pub moe: Option<MoeLayer>,
    pub ffn: Option<FeedForward>,
}

impl EncoderLayer {
    pub fn new(
        params: &mut ParamStore,
        name: &str,
        d_model: usize,
        n_heads: usize,
        hidden: usize,
        kind: &BlockKind,
    ) -> Self {
        let attn = MultiHeadAttention::new(params, &format!("{name}.attn"), d_model, n_heads);
        let norm1 = LayerNorm::new(params, &format!("{name}.norm1"), d_model);
        let norm2 = LayerNorm::new(params, &format!("{name}.norm2"), d_model);
        let (moe, ffn) = match kind {
            BlockKind::Moe { n_experts, top_k } => (
                Some(MoeLayer::new(
                    params,
                    &format!("{name}.moe"),
                    d_model,
                    hidden,
                    *n_experts,
                    *top_k,
                )),
                None,
            ),
            BlockKind::Dense => (
                None,
                Some(FeedForward::new(
                    params,
                    &format!("{name}.ffn"),
                    d_model,
                    hidden,
                )),
            ),
        };
        Self {
            attn,
            norm1,
            norm2,
            moe,
            ffn,
        }
    }

    /// Forward; returns `(output, aux_loss_node_if_moe)`.
    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> (NodeId, Option<NodeId>) {
        // Post-norm residual blocks (as in the original Transformer).
        let a = self.attn.forward(g, x);
        let res1 = g.add(x, a);
        let n1 = self.norm1.forward(g, res1);
        let (block_out, aux) = match (&self.moe, &self.ffn) {
            (Some(moe), _) => {
                let out = moe.forward(g, n1);
                (out.out, Some(out.aux_loss))
            }
            (None, Some(ffn)) => (ffn.forward(g, n1), None),
            _ => unreachable!("layer has either moe or ffn"),
        };
        let res2 = g.add(n1, block_out);
        let n2 = self.norm2.forward(g, res2);
        (n2, aux)
    }
}

/// Hyperparameters for the reconstruction transformer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Input token width (number of metrics).
    pub input_dim: usize,
    pub d_model: usize,
    pub n_heads: usize,
    pub n_layers: usize,
    /// FFN / expert hidden width.
    pub hidden: usize,
    pub block: BlockKind,
    /// Weight on the MoE load-balancing auxiliary loss.
    pub aux_weight: f64,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        // Artifact description: 3 encoder layers, 3 heads, 3 experts,
        // top-1 gating.
        Self {
            input_dim: 16,
            d_model: 24,
            n_heads: 3,
            n_layers: 3,
            hidden: 48,
            block: BlockKind::Moe {
                n_experts: 3,
                top_k: 1,
            },
            aux_weight: 0.01,
        }
    }
}

/// Reconstruction transformer: embed → +PE → encoder stack → linear
/// decoder back to the input width.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReconstructionTransformer {
    pub cfg: TransformerConfig,
    pub embed: Linear,
    pub layers: Vec<EncoderLayer>,
    pub decoder: Linear,
}

impl ReconstructionTransformer {
    pub fn new(params: &mut ParamStore, cfg: TransformerConfig) -> Self {
        let embed = Linear::new(params, "embed", cfg.input_dim, cfg.d_model);
        let layers = (0..cfg.n_layers)
            .map(|l| {
                EncoderLayer::new(
                    params,
                    &format!("enc{l}"),
                    cfg.d_model,
                    cfg.n_heads,
                    cfg.hidden,
                    &cfg.block,
                )
            })
            .collect();
        let decoder = Linear::new(params, "decoder", cfg.d_model, cfg.input_dim);
        Self {
            cfg,
            embed,
            layers,
            decoder,
        }
    }

    /// Forward a `T × input_dim` window with a precomputed positional
    /// encoding table (`T × d_model`). Returns `(reconstruction,
    /// summed_aux_loss)`.
    pub fn forward(
        &self,
        g: &mut Graph<'_>,
        x: NodeId,
        pos_encoding: NodeId,
    ) -> (NodeId, Option<NodeId>) {
        let e = self.embed.forward(g, x);
        let mut h = g.add(e, pos_encoding);
        let mut aux_total: Option<NodeId> = None;
        for layer in &self.layers {
            let (out, aux) = layer.forward(g, h);
            h = out;
            if let Some(a) = aux {
                aux_total = Some(match aux_total {
                    Some(acc) => g.add(acc, a),
                    None => a,
                });
            }
        }
        (self.decoder.forward(g, h), aux_total)
    }

    /// Training loss for one window: WMSE reconstruction (Eq. 5) plus the
    /// weighted MoE auxiliary loss.
    pub fn loss(
        &self,
        g: &mut Graph<'_>,
        x: NodeId,
        pos_encoding: NodeId,
        weights: NodeId,
    ) -> NodeId {
        let (recon, aux) = self.forward(g, x, pos_encoding);
        let wmse = g.wmse(recon, x, weights);
        match aux {
            Some(a) if self.cfg.aux_weight > 0.0 => {
                let wa = g.scale(a, self.cfg.aux_weight);
                g.add(wmse, wa)
            }
            _ => wmse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::sinusoidal_pe;
    use crate::optim::Adam;
    use ns_linalg::matrix::Matrix;

    fn window(t: usize, m: usize, phase: f64) -> Matrix {
        Matrix::from_fn(t, m, |r, c| {
            ((r as f64 * 0.4 + c as f64 + phase) * 0.7).sin()
        })
    }

    fn small_cfg(block: BlockKind) -> TransformerConfig {
        TransformerConfig {
            input_dim: 4,
            d_model: 8,
            n_heads: 2,
            n_layers: 2,
            hidden: 16,
            block,
            aux_weight: 0.01,
        }
    }

    #[test]
    fn forward_shapes() {
        for block in [
            BlockKind::Moe {
                n_experts: 3,
                top_k: 1,
            },
            BlockKind::Dense,
        ] {
            let mut params = ParamStore::new(1);
            let model = ReconstructionTransformer::new(&mut params, small_cfg(block));
            let mut g = Graph::new(&params);
            let x = g.input(window(10, 4, 0.0));
            let pe = g.input(sinusoidal_pe(10, 8, 0));
            let (recon, aux) = model.forward(&mut g, x, pe);
            assert_eq!(g.value(recon).shape(), (10, 4));
            match model.cfg.block {
                BlockKind::Moe { .. } => assert!(aux.is_some()),
                BlockKind::Dense => assert!(aux.is_none()),
            }
        }
    }

    #[test]
    fn moe_transformer_learns_reconstruction() {
        let mut params = ParamStore::new(42);
        let model = ReconstructionTransformer::new(
            &mut params,
            small_cfg(BlockKind::Moe {
                n_experts: 2,
                top_k: 1,
            }),
        );
        let data = window(12, 4, 0.0);
        let w = Matrix::filled(1, 4, 1.0);
        let pe = sinusoidal_pe(12, 8, 0);
        let mut opt = Adam::new(3e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            let (loss, grads) = {
                let mut g = Graph::new(&params);
                let x = g.input(data.clone());
                let p = g.input(pe.clone());
                let wn = g.input(w.clone());
                let l = model.loss(&mut g, x, p, wn);
                (g.scalar(l), g.backward(l))
            };
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
            opt.step(&mut params, &grads);
        }
        assert!(
            last < first.unwrap() * 0.2,
            "MoE transformer failed to learn: {first:?} → {last}"
        );
    }

    #[test]
    fn dense_variant_also_learns() {
        let mut params = ParamStore::new(43);
        let model = ReconstructionTransformer::new(&mut params, small_cfg(BlockKind::Dense));
        let data = window(12, 4, 1.0);
        let w = Matrix::filled(1, 4, 1.0);
        let pe = sinusoidal_pe(12, 8, 0);
        let mut opt = Adam::new(3e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            let (loss, grads) = {
                let mut g = Graph::new(&params);
                let x = g.input(data.clone());
                let p = g.input(pe.clone());
                let wn = g.input(w.clone());
                let l = model.loss(&mut g, x, p, wn);
                (g.scalar(l), g.backward(l))
            };
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
            opt.step(&mut params, &grads);
        }
        assert!(
            last < first.unwrap() * 0.2,
            "dense transformer: {first:?} → {last}"
        );
    }

    #[test]
    fn reconstruction_error_separates_unseen_pattern() {
        // Train on one pattern; a very different pattern must reconstruct
        // worse. This is the anomaly-score mechanism end-to-end.
        let mut params = ParamStore::new(44);
        let model = ReconstructionTransformer::new(
            &mut params,
            small_cfg(BlockKind::Moe {
                n_experts: 2,
                top_k: 1,
            }),
        );
        let train = window(12, 4, 0.0);
        let w = Matrix::filled(1, 4, 1.0);
        let pe = sinusoidal_pe(12, 8, 0);
        let mut opt = Adam::new(3e-3);
        for _ in 0..200 {
            let grads = {
                let mut g = Graph::new(&params);
                let x = g.input(train.clone());
                let p = g.input(pe.clone());
                let wn = g.input(w.clone());
                let l = model.loss(&mut g, x, p, wn);
                g.backward(l)
            };
            opt.step(&mut params, &grads);
        }
        let err_of = |data: &Matrix| {
            let mut g = Graph::new(&params);
            let x = g.input(data.clone());
            let p = g.input(pe.clone());
            let (recon, _) = model.forward(&mut g, x, p);
            let l = g.mse(recon, x);
            g.scalar(l)
        };
        let seen = err_of(&train);
        // Anomalous pattern: large constant offset (a "memory exhaustion"
        // style level shift).
        let anomalous = train.map(|v| v + 4.0);
        let unseen = err_of(&anomalous);
        assert!(unseen > seen * 5.0, "seen {seen} vs unseen {unseen}");
    }

    #[test]
    fn param_count_is_reported() {
        let mut params = ParamStore::new(7);
        let _model = ReconstructionTransformer::new(
            &mut params,
            small_cfg(BlockKind::Moe {
                n_experts: 3,
                top_k: 1,
            }),
        );
        // Structure sanity: embed + 2 layers × (4 attn linears ×2 + 2 norms ×2
        // + 3 experts ×4 + gate) + decoder.
        assert!(params.num_scalars() > 1000);
        assert!(params.len() > 30);
    }
}
