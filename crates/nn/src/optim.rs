//! Optimizers: SGD (with momentum) and Adam.

use crate::params::{GradStore, ParamStore};
use ns_linalg::matrix::Matrix;

/// Plain SGD with optional momentum.
pub struct Sgd {
    pub lr: f64,
    pub momentum: f64,
    velocity: Vec<Matrix>,
}

impl Sgd {
    pub fn new(lr: f64, momentum: f64) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Apply one update step.
    pub fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        if self.velocity.is_empty() {
            self.velocity = (0..params.len())
                .map(|i| {
                    let (r, c) = params.get(i).shape();
                    Matrix::zeros(r, c)
                })
                .collect();
        }
        for i in 0..params.len() {
            let g = grads.get(i);
            let v = &mut self.velocity[i];
            for (vv, gv) in v.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *vv = self.momentum * *vv + gv;
            }
            let p = params.get_mut(i);
            for (pv, vv) in p.as_mut_slice().iter_mut().zip(v.as_slice()) {
                *pv -= self.lr * vv;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Standard betas (0.9, 0.999), eps 1e-8.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Apply one update step.
    pub fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        if self.m.is_empty() {
            let zeros = |params: &ParamStore| -> Vec<Matrix> {
                (0..params.len())
                    .map(|i| {
                        let (r, c) = params.get(i).shape();
                        Matrix::zeros(r, c)
                    })
                    .collect()
            };
            self.m = zeros(params);
            self.v = zeros(params);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads.get(i);
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mv, vv), gv) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice())
                .zip(g.as_slice())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
            }
            let p = params.get_mut(i);
            for ((pv, mv), vv) in p
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
            {
                let mhat = mv / bc1;
                let vhat = vv / bc2;
                *pv -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Graph;

    /// Minimise mean((w - target)²) and confirm convergence.
    fn quadratic_descent(optim: &mut dyn FnMut(&mut ParamStore, &GradStore)) -> f64 {
        let mut params = ParamStore::new(9);
        let w = params.add("w", Matrix::filled(2, 2, 5.0));
        let target = Matrix::from_rows(&[vec![1.0, -1.0], vec![0.5, 2.0]]);
        let mut last = f64::INFINITY;
        for _ in 0..400 {
            let (loss, grads) = {
                let mut g = Graph::new(&params);
                let wn = g.param(w);
                let t = g.input(target.clone());
                let l = g.mse(wn, t);
                let loss = g.scalar(l);
                (loss, g.backward(l))
            };
            optim(&mut params, &grads);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.2, 0.0);
        let final_loss = quadratic_descent(&mut |p, g| opt.step(p, g));
        assert!(final_loss < 1e-8, "final loss {final_loss}");
    }

    #[test]
    fn sgd_momentum_accelerates() {
        // Count steps until |w| < 1 on f(w) = w²; the heavy-ball variant
        // must get there in strictly fewer steps.
        let steps_to_threshold = |momentum: f64| {
            let mut opt = Sgd::new(0.01, momentum);
            let mut params = ParamStore::new(9);
            let w = params.add("w", Matrix::filled(1, 1, 10.0));
            for step in 0..1000 {
                if params.get(w)[(0, 0)].abs() < 1.0 {
                    return step;
                }
                let grads = {
                    let mut g = Graph::new(&params);
                    let wn = g.param(w);
                    let sq = g.mul(wn, wn);
                    let l = g.mean_all(sq);
                    g.backward(l)
                };
                opt.step(&mut params, &grads);
            }
            1000
        };
        let plain = steps_to_threshold(0.0);
        let heavy = steps_to_threshold(0.9);
        assert!(heavy < plain, "momentum {heavy} steps vs plain {plain}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let final_loss = quadratic_descent(&mut |p, g| opt.step(p, g));
        assert!(final_loss < 1e-6, "final loss {final_loss}");
    }

    #[test]
    fn adam_handles_sparse_scale_differences() {
        // One coordinate has a 1000× larger gradient scale; Adam should
        // still pull both to the optimum.
        let mut params = ParamStore::new(10);
        let w = params.add("w", Matrix::from_rows(&[vec![3.0, 3.0]]));
        let scales = Matrix::from_rows(&[vec![1000.0, 1.0]]);
        let mut opt = Adam::new(0.05);
        for _ in 0..2000 {
            let grads = {
                let mut g = Graph::new(&params);
                let wn = g.param(w);
                let s = g.input(scales.clone());
                let scaled = g.mul(wn, s);
                let sq = g.mul(scaled, scaled);
                let l = g.mean_all(sq);
                g.backward(l)
            };
            opt.step(&mut params, &grads);
        }
        assert!(params.get(w)[(0, 0)].abs() < 1e-2);
        assert!(params.get(w)[(0, 1)].abs() < 1e-2);
    }
}
