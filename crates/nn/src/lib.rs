//! `ns-nn` — a from-scratch deep-learning substrate for NodeSentry.
//!
//! The paper trains its shared per-cluster models in PyTorch; this crate
//! replaces that stack with a small, fully-tested reverse-mode autodiff
//! engine and the model zoo the reproduction needs:
//!
//! * [`tape`] — single-use autodiff [`tape::Graph`] over 2-D matrices with
//!   the op set required by Transformers, MoE routing, LSTMs and VAEs
//!   (matmul, softmax, layer norm, gather/scatter rows, broadcasts,
//!   reductions). Every op's backward is verified against central finite
//!   differences ([`gradcheck`]).
//! * [`params`] — shared [`params::ParamStore`] + [`params::GradStore`];
//!   batches train data-parallel by building one graph per example on
//!   rayon workers and merging gradient stores.
//! * [`optim`] — Adam and SGD(+momentum).
//! * [`layers`] — Linear, LayerNorm, FeedForward, multi-head
//!   self-attention, sinusoidal positional encoding.
//! * [`moe`] — the sparse top-k Mixture-of-Experts layer (§3.4, Eq. 3–4)
//!   with Switch-style load-balance auxiliary loss.
//! * [`transformer`] — the reconstruction Transformer whose dense FFN is
//!   replaced by the MoE layer (Fig. 3), plus the dense variant used by
//!   ablation C5.
//! * [`lstm`] — LSTM cell and sequence autoencoder (RUAD baseline).
//! * [`vae`] — variational autoencoder (Prodigy baseline).
//! * [`infer`] — tape-free inference fast path: [`infer::InferenceSession`]
//!   reuses preallocated scratch and prepacked (transposed) weights to run
//!   the transformer forward with zero steady-state heap allocations,
//!   bit-identical to the taped forward.

pub mod gradcheck;
pub mod infer;
pub mod layers;
pub mod lstm;
pub mod moe;
pub mod optim;
pub mod params;
pub mod tape;
pub mod transformer;
pub mod vae;

pub use infer::{
    fast_path_enabled, set_fast_path, InferenceSession, InferenceSessionF32, SessionPool,
    SessionPoolF32, WindowSpec,
};
pub use layers::{
    sinusoidal_pe, sinusoidal_pe_at, FeedForward, LayerNorm, Linear, MultiHeadAttention,
};
pub use moe::{MoeLayer, MoeOutput};
pub use optim::{Adam, Sgd};
pub use params::{GradStore, ParamId, ParamStore};
pub use tape::{Graph, NodeId};
pub use transformer::{BlockKind, EncoderLayer, ReconstructionTransformer, TransformerConfig};
