//! Sparse Mixture-of-Experts layer with top-k gating (paper §3.4, Eq. 3–4).
//!
//! The MoE layer replaces the dense FFN of a Transformer block: a gating
//! network routes each token to the `top_k` experts with the highest gate
//! values, and the layer output is the gate-weighted sum of those experts'
//! outputs. Gradients flow into the router through the selected gate
//! probabilities (standard sparse-MoE training), so "the routing variable
//! W_r is updated according to the experts' losses".

use crate::layers::FeedForward;
use crate::params::{ParamId, ParamStore};
use crate::tape::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// The result of one MoE forward pass.
pub struct MoeOutput {
    /// Layer output, same shape as the input.
    pub out: NodeId,
    /// Full gate probability matrix (`T × n_experts`) — Eq. 3.
    pub gate_probs: NodeId,
    /// Token indices routed to each expert (an index appears under every
    /// expert in its token's top-k set).
    pub assignments: Vec<Vec<usize>>,
    /// Switch-style load-balance auxiliary loss (scalar node).
    pub aux_loss: NodeId,
}

/// Sparse top-k MoE layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MoeLayer {
    pub experts: Vec<FeedForward>,
    /// Router weights `W_r` (`d_model × n_experts`).
    pub gate: ParamId,
    pub top_k: usize,
    pub d_model: usize,
}

impl MoeLayer {
    pub fn new(
        params: &mut ParamStore,
        name: &str,
        d_model: usize,
        hidden: usize,
        n_experts: usize,
        top_k: usize,
    ) -> Self {
        assert!(n_experts >= 1, "need at least one expert");
        let experts = (0..n_experts)
            .map(|e| FeedForward::new(params, &format!("{name}.expert{e}"), d_model, hidden))
            .collect();
        let gate = params.xavier(format!("{name}.gate"), d_model, n_experts);
        Self {
            experts,
            gate,
            top_k: top_k.clamp(1, n_experts),
            d_model,
        }
    }

    pub fn n_experts(&self) -> usize {
        self.experts.len()
    }

    /// Forward over a `T × d_model` token matrix.
    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> MoeOutput {
        let tokens = g.value(x).rows();
        let n_exp = self.experts.len();
        // h(x) = x · W_r ; p = softmax(h)   (Eq. 3)
        let wr = g.param(self.gate);
        let h = g.matmul(x, wr);
        let p = g.softmax_rows(h);

        // Non-differentiable top-k routing decision from gate values.
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); n_exp];
        {
            let probs = g.value(p);
            for t in 0..tokens {
                let row = probs.row(t);
                let top = ns_linalg::vecops::top_k_indices(row, self.top_k);
                for e in top {
                    assignments[e].push(t);
                }
            }
        }

        // y = Σ_{i ∈ topk} p_i(x) · E_i(x)   (Eq. 4)
        let mut total: Option<NodeId> = None;
        for (e, expert) in self.experts.iter().enumerate() {
            let idx = &assignments[e];
            if idx.is_empty() {
                continue;
            }
            let xe = g.gather_rows(x, idx);
            let ye = expert.forward(g, xe);
            let pairs: Vec<(usize, usize)> = idx.iter().map(|&t| (t, e)).collect();
            let gate_col = g.select_elems(p, &pairs);
            let weighted = g.mul_col_broadcast(ye, gate_col);
            let full = g.scatter_rows(weighted, idx, tokens);
            total = Some(match total {
                Some(acc) => g.add(acc, full),
                None => full,
            });
        }
        let out = total.unwrap_or_else(|| g.scale(x, 0.0));

        // Switch-Transformer load-balance loss: N · Σ_e f_e · P_e where
        // f_e is the (constant) fraction of tokens whose top-1 choice is e
        // and P_e the mean gate probability of e.
        let mut f = vec![0.0f64; n_exp];
        {
            let probs = g.value(p);
            for t in 0..tokens {
                if let Some(best) = ns_linalg::vecops::argmax(probs.row(t)) {
                    f[best] += 1.0 / tokens.max(1) as f64;
                }
            }
        }
        let f_row = g.input(ns_linalg::matrix::Matrix::row_vector(&f));
        let p_mean = g.col_means(p);
        let prod = g.mul(p_mean, f_row);
        let s = g.sum_all(prod);
        let aux_loss = g.scale(s, n_exp as f64);

        MoeOutput {
            out,
            gate_probs: p,
            assignments,
            aux_loss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use ns_linalg::matrix::Matrix;

    fn layer(n_experts: usize, top_k: usize, seed: u64) -> (ParamStore, MoeLayer) {
        let mut params = ParamStore::new(seed);
        let moe = MoeLayer::new(&mut params, "moe", 8, 16, n_experts, top_k);
        (params, moe)
    }

    #[test]
    fn gate_probabilities_normalized() {
        let (params, moe) = layer(4, 1, 7);
        let mut g = Graph::new(&params);
        let x = g.input(Matrix::from_fn(10, 8, |r, c| {
            ((r * 3 + c) as f64 * 0.21).sin()
        }));
        let out = moe.forward(&mut g, x);
        let probs = g.value(out.gate_probs);
        assert_eq!(probs.shape(), (10, 4));
        for r in 0..10 {
            let s: f64 = probs.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-10, "row {r} sums to {s}");
            assert!(probs.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn every_token_assigned_to_exactly_top_k_experts() {
        for top_k in 1..=3 {
            let (params, moe) = layer(3, top_k, 11);
            let mut g = Graph::new(&params);
            let x = g.input(Matrix::from_fn(20, 8, |r, c| {
                ((r + 2 * c) as f64 * 0.37).cos()
            }));
            let out = moe.forward(&mut g, x);
            let total: usize = out.assignments.iter().map(|a| a.len()).sum();
            assert_eq!(total, 20 * top_k, "top_k={top_k}");
            // No expert sees the same token twice.
            for a in &out.assignments {
                let mut s = a.clone();
                s.sort_unstable();
                s.dedup();
                assert_eq!(s.len(), a.len());
            }
        }
    }

    #[test]
    fn output_shape_matches_input_and_is_finite() {
        let (params, moe) = layer(3, 1, 13);
        let mut g = Graph::new(&params);
        let x = g.input(Matrix::from_fn(6, 8, |r, c| (r as f64 - c as f64) * 0.1));
        let out = moe.forward(&mut g, x);
        assert_eq!(g.value(out.out).shape(), (6, 8));
        assert!(g.value(out.out).as_slice().iter().all(|v| v.is_finite()));
        assert!(g.scalar(out.aux_loss).is_finite());
    }

    #[test]
    fn single_expert_equals_plain_ffn_times_gate_one() {
        // With one expert the gate softmax is identically 1, so the MoE
        // output must equal the expert FFN applied to all tokens.
        let (params, moe) = layer(1, 1, 17);
        let mut g = Graph::new(&params);
        let xm = Matrix::from_fn(5, 8, |r, c| ((r * c) as f64 * 0.05).sin());
        let x = g.input(xm.clone());
        let out = moe.forward(&mut g, x);
        let x2 = g.input(xm);
        let plain = moe.experts[0].forward(&mut g, x2);
        let a = g.value(out.out).clone();
        let b = g.value(plain).clone();
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn gradients_flow_into_router_and_experts() {
        let (params, moe) = layer(3, 1, 19);
        let mut g = Graph::new(&params);
        let x = g.input(Matrix::from_fn(12, 8, |r, c| {
            ((r * 5 + c * 3) as f64 * 0.13).sin()
        }));
        let out = moe.forward(&mut g, x);
        let target = g.input(Matrix::zeros(12, 8));
        let l = g.mse(out.out, target);
        let grads = g.backward(l);
        // Router gradient must be nonzero (flows through selected gates).
        assert!(
            grads.get(moe.gate).max_abs() > 0.0,
            "router got no gradient"
        );
        // At least one expert's weights get gradient.
        let any_expert = moe
            .experts
            .iter()
            .any(|e| grads.get(e.lin1.w).max_abs() > 0.0);
        assert!(any_expert, "no expert received gradient");
    }

    #[test]
    fn moe_reconstruction_training_converges() {
        // Train a 2-expert MoE to reconstruct two distinct token families;
        // loss must drop by a large factor.
        let (mut params, moe) = layer(2, 1, 23);
        let data = Matrix::from_fn(16, 8, |r, c| {
            if r % 2 == 0 {
                ((c as f64) * 0.7).sin()
            } else {
                -((c as f64) * 0.4).cos()
            }
        });
        let mut opt = Adam::new(0.01);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let (loss, grads) = {
                let mut g = Graph::new(&params);
                let x = g.input(data.clone());
                let out = moe.forward(&mut g, x);
                let t = g.input(data.clone());
                let l = g.mse(out.out, t);
                (g.scalar(l), g.backward(l))
            };
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
            opt.step(&mut params, &grads);
        }
        assert!(last < first.unwrap() * 0.1, "loss {first:?} → {last}");
    }

    #[test]
    fn aux_loss_favors_balanced_routing() {
        // Uniform gate probabilities minimise the Switch aux loss at 1.0;
        // collapsed routing pushes it toward n_experts.
        let (params, moe) = layer(4, 1, 29);
        let mut g = Graph::new(&params);
        let x = g.input(Matrix::from_fn(40, 8, |r, c| {
            ((r * 7 + c) as f64 * 0.11).sin()
        }));
        let out = moe.forward(&mut g, x);
        let aux = g.scalar(out.aux_loss);
        assert!(
            aux >= 1.0 - 1e-6,
            "aux {aux} must be ≥ 1 (balanced optimum)"
        );
        assert!(aux <= 4.0 + 1e-6);
    }
}
