//! Parameter storage shared across forward passes.
//!
//! Training loops build a fresh [`crate::tape::Graph`] per example, so the
//! learnable state lives here: a flat arena of named matrices, plus an
//! aligned [`GradStore`] that accumulates gradients across a (possibly
//! rayon-parallel) batch before an optimizer step.

use ns_linalg::matrix::Matrix;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Index of a parameter inside a [`ParamStore`].
pub type ParamId = usize;

/// Named, ordered collection of learnable matrices.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParamStore {
    values: Vec<Matrix>,
    names: Vec<String>,
    rng: u64,
    /// Mutation stamp, bumped by every [`ParamStore::get_mut`] — i.e. on
    /// every optimizer step. Lets callers that derive state from the
    /// parameters (caches, checkpointers) detect updates cheaply. The
    /// inference fast path ([`crate::infer::InferenceSession`]) does not
    /// need it: it reads weights live from the store, so fine-tuning is
    /// visible on the very next forward.
    version: u64,
}

impl ParamStore {
    /// Create an empty store; `seed` drives all weight initialisation.
    pub fn new(seed: u64) -> Self {
        Self {
            values: Vec::new(),
            names: Vec::new(),
            rng: seed,
            version: 0,
        }
    }

    fn next_rng(&mut self) -> ChaCha8Rng {
        // Derive a fresh stream per parameter so insertion order, not
        // global call count, determines each init.
        let seed = self.rng;
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Register a parameter with explicit initial value.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.values.push(value);
        self.names.push(name.into());
        self.values.len() - 1
    }

    /// Xavier/Glorot-uniform initialised `rows × cols` parameter.
    pub fn xavier(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        let mut rng = self.next_rng();
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let m = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit));
        self.add(name, m)
    }

    /// Zero-initialised parameter (biases).
    pub fn zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Matrix::zeros(rows, cols))
    }

    /// Constant-initialised parameter (LayerNorm gains start at 1).
    pub fn constant(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        v: f64,
    ) -> ParamId {
        self.add(name, Matrix::filled(rows, cols, v))
    }

    /// Number of parameters (matrices).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|m| m.len()).sum()
    }

    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.values[id]
    }

    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        self.version = self.version.wrapping_add(1);
        &mut self.values[id]
    }

    /// Current mutation stamp (see the `version` field). Changes whenever
    /// any parameter is borrowed mutably.
    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id]
    }

    /// Fresh zeroed gradient store aligned with this parameter set.
    pub fn zero_grads(&self) -> GradStore {
        GradStore {
            grads: self
                .values
                .iter()
                .map(|m| Matrix::zeros(m.rows(), m.cols()))
                .collect(),
        }
    }
}

/// Gradients aligned index-for-index with a [`ParamStore`].
#[derive(Clone, Debug)]
pub struct GradStore {
    grads: Vec<Matrix>,
}

impl GradStore {
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.grads[id]
    }

    /// Accumulate a gradient contribution for one parameter.
    pub fn accumulate(&mut self, id: ParamId, g: &Matrix) {
        self.grads[id].add_assign(g);
    }

    /// Merge another grad store (batch-parallel reduction).
    pub fn merge(&mut self, other: &GradStore) {
        assert_eq!(self.grads.len(), other.grads.len());
        for (a, b) in self.grads.iter_mut().zip(&other.grads) {
            a.add_assign(b);
        }
    }

    /// Scale every gradient (e.g. 1/batch averaging).
    pub fn scale(&mut self, k: f64) {
        for g in self.grads.iter_mut() {
            g.map_inplace(|v| v * k);
        }
    }

    /// Global L2 norm across all gradients.
    pub fn global_norm(&self) -> f64 {
        self.grads
            .iter()
            .map(|g| g.as_slice().iter().map(|v| v * v).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }

    /// Clip by global norm: rescale if the norm exceeds `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f64) {
        let n = self.global_norm();
        if n > max_norm && n > 0.0 {
            self.scale(max_norm / n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_bumps_on_mutable_access_only() {
        let mut p = ParamStore::new(1);
        let w = p.xavier("w", 2, 2);
        let v0 = p.version();
        let _ = p.get(w);
        assert_eq!(p.version(), v0, "read-only access must not bump");
        p.get_mut(w).map_inplace(|x| x + 1.0);
        assert_ne!(p.version(), v0, "get_mut must bump the stamp");
    }

    #[test]
    fn registration_and_lookup() {
        let mut p = ParamStore::new(1);
        let w = p.xavier("w", 4, 3);
        let b = p.zeros("b", 1, 3);
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_scalars(), 15);
        assert_eq!(p.name(w), "w");
        assert_eq!(p.get(b).shape(), (1, 3));
        assert!(p.get(b).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn xavier_bounds_and_determinism() {
        let mut p1 = ParamStore::new(42);
        let w1 = p1.xavier("w", 10, 10);
        let mut p2 = ParamStore::new(42);
        let w2 = p2.xavier("w", 10, 10);
        assert_eq!(p1.get(w1), p2.get(w2), "same seed must reproduce");
        let limit = (6.0 / 20.0f64).sqrt();
        assert!(p1.get(w1).as_slice().iter().all(|v| v.abs() <= limit));
        // Different seeds differ.
        let mut p3 = ParamStore::new(43);
        let w3 = p3.xavier("w", 10, 10);
        assert_ne!(p1.get(w1), p3.get(w3));
    }

    #[test]
    fn grad_accumulate_merge_clip() {
        let mut p = ParamStore::new(0);
        let w = p.add("w", Matrix::filled(2, 2, 1.0));
        let mut g1 = p.zero_grads();
        g1.accumulate(w, &Matrix::filled(2, 2, 3.0));
        let mut g2 = p.zero_grads();
        g2.accumulate(w, &Matrix::filled(2, 2, 1.0));
        g1.merge(&g2);
        assert_eq!(g1.get(w)[(0, 0)], 4.0);
        g1.scale(0.5);
        assert_eq!(g1.get(w)[(1, 1)], 2.0);
        let norm = g1.global_norm();
        assert!((norm - 4.0).abs() < 1e-12);
        g1.clip_global_norm(1.0);
        assert!((g1.global_norm() - 1.0).abs() < 1e-12);
    }
}
