//! Reverse-mode automatic differentiation over 2-D matrices.
//!
//! A [`Graph`] is a single-use tape: every operation appends a node whose
//! parents were created earlier, so a single reverse sweep over the arena
//! is a valid topological-order backpropagation. Training loops build one
//! graph per example (sequences are `T × d` matrices), run
//! [`Graph::backward`], and merge the resulting [`GradStore`]s across a
//! batch — which is how the workspace gets rayon data-parallel training
//! without any shared mutable state.

use crate::params::{GradStore, ParamId, ParamStore};
use ns_linalg::matrix::Matrix;

/// Handle to a node in the tape.
pub type NodeId = usize;

/// Tape operation. Parents are always lower `NodeId`s.
#[derive(Clone, Debug)]
enum Op {
    /// Constant input (no gradient tracked beyond the tape).
    Input,
    /// Learnable parameter leaf.
    Param(ParamId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    /// Elementwise product.
    Mul(NodeId, NodeId),
    Scale(NodeId, f64),
    MatMul(NodeId, NodeId),
    Transpose(NodeId),
    Relu(NodeId),
    Tanh(NodeId),
    Sigmoid(NodeId),
    Exp(NodeId),
    /// Row-wise softmax.
    SoftmaxRows(NodeId),
    /// Row-wise LayerNorm with learnable gain/shift (`1 × d` each).
    LayerNorm {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        eps: f64,
    },
    /// `a + row` with `row` broadcast over all rows of `a`.
    AddRowBroadcast(NodeId, NodeId),
    /// `a ⊙ row` with `row` broadcast over all rows.
    MulRowBroadcast(NodeId, NodeId),
    /// `a ⊙ col` with `col` (`n × 1`) broadcast over all columns.
    MulColBroadcast(NodeId, NodeId),
    GatherRows(NodeId, Vec<usize>),
    /// Place rows of `src` at `idx` within a `rows`-tall zero matrix.
    ScatterRows {
        src: NodeId,
        idx: Vec<usize>,
        rows: usize,
    },
    /// Pick one element per listed `(row, col)` pair into a column vector.
    SelectElems(NodeId, Vec<(usize, usize)>),
    SliceCols(NodeId, usize, usize),
    ConcatCols(Vec<NodeId>),
    SumAll(NodeId),
    MeanAll(NodeId),
    /// Column means → `1 × cols` row vector.
    ColMeans(NodeId),
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// A single-use autodiff tape bound to a [`ParamStore`].
pub struct Graph<'p> {
    params: &'p ParamStore,
    nodes: Vec<Node>,
}

impl<'p> Graph<'p> {
    pub fn new(params: &'p ParamStore) -> Self {
        Self {
            params,
            nodes: Vec::with_capacity(256),
        }
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        self.nodes.len() - 1
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id].value
    }

    /// Gradient of a node after [`Graph::backward`] (None if unreached).
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.nodes[id].grad.as_ref()
    }

    /// Constant input leaf.
    pub fn input(&mut self, m: Matrix) -> NodeId {
        self.push(m, Op::Input)
    }

    /// Parameter leaf (copies the current value onto the tape).
    pub fn param(&mut self, id: ParamId) -> NodeId {
        self.push(self.params.get(id).clone(), Op::Param(id))
    }

    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.add(&self.nodes[b].value);
        self.push(v, Op::Add(a, b))
    }

    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.sub(&self.nodes[b].value);
        self.push(v, Op::Sub(a, b))
    }

    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.hadamard(&self.nodes[b].value);
        self.push(v, Op::Mul(a, b))
    }

    pub fn scale(&mut self, a: NodeId, k: f64) -> NodeId {
        let v = self.nodes[a].value.scale(k);
        self.push(v, Op::Scale(a, k))
    }

    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.matmul(&self.nodes[b].value);
        self.push(v, Op::MatMul(a, b))
    }

    /// Matmul whose left operand is structurally sparse (e.g. post-ReLU
    /// activations): the forward uses the zero-skipping kernel, which is
    /// bit-identical to the dense one for finite inputs. The backward pass
    /// is the ordinary matmul rule.
    pub fn matmul_sparse_lhs(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.matmul_sparse_lhs(&self.nodes[b].value);
        self.push(v, Op::MatMul(a, b))
    }

    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.transpose();
        self.push(v, Op::Transpose(a))
    }

    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(f64::tanh);
        self.push(v, Op::Tanh(a))
    }

    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(f64::exp);
        self.push(v, Op::Exp(a))
    }

    /// Numerically-stable row-wise softmax.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let src = &self.nodes[a].value;
        let mut v = src.clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut s = 0.0;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                s += *x;
            }
            for x in row.iter_mut() {
                *x /= s;
            }
        }
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Row-wise LayerNorm: `γ ⊙ (x − μ)/σ + β` with `γ, β` of shape `1 × d`.
    pub fn layer_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId) -> NodeId {
        let eps = 1e-5;
        let src = &self.nodes[x].value;
        let g = &self.nodes[gamma].value;
        let b = &self.nodes[beta].value;
        assert_eq!(g.shape(), (1, src.cols()), "gamma must be 1×d");
        assert_eq!(b.shape(), (1, src.cols()), "beta must be 1×d");
        let mut out = src.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let d = row.len() as f64;
            let mean = row.iter().sum::<f64>() / d;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / d;
            let inv = 1.0 / (var + eps).sqrt();
            for (i, v) in row.iter_mut().enumerate() {
                *v = g.as_slice()[i] * (*v - mean) * inv + b.as_slice()[i];
            }
        }
        self.push(
            out,
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
            },
        )
    }

    pub fn add_row_broadcast(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let v = self.nodes[a]
            .value
            .add_row_broadcast(&self.nodes[row].value);
        self.push(v, Op::AddRowBroadcast(a, row))
    }

    pub fn mul_row_broadcast(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let av = &self.nodes[a].value;
        let rv = &self.nodes[row].value;
        assert_eq!(rv.rows(), 1);
        assert_eq!(rv.cols(), av.cols());
        let mut v = av.clone();
        for r in 0..v.rows() {
            for (x, w) in v.row_mut(r).iter_mut().zip(rv.as_slice()) {
                *x *= w;
            }
        }
        self.push(v, Op::MulRowBroadcast(a, row))
    }

    pub fn mul_col_broadcast(&mut self, a: NodeId, col: NodeId) -> NodeId {
        let av = &self.nodes[a].value;
        let cv = &self.nodes[col].value;
        assert_eq!(cv.cols(), 1);
        assert_eq!(cv.rows(), av.rows());
        let mut v = av.clone();
        for r in 0..v.rows() {
            let w = cv.as_slice()[r];
            for x in v.row_mut(r).iter_mut() {
                *x *= w;
            }
        }
        self.push(v, Op::MulColBroadcast(a, col))
    }

    pub fn gather_rows(&mut self, a: NodeId, idx: &[usize]) -> NodeId {
        let v = self.nodes[a].value.gather_rows(idx);
        self.push(v, Op::GatherRows(a, idx.to_vec()))
    }

    /// Inverse of gather: place `src`'s rows at positions `idx` in a
    /// zero-filled `rows × cols` matrix. `idx` must be unique positions.
    pub fn scatter_rows(&mut self, src: NodeId, idx: &[usize], rows: usize) -> NodeId {
        let sv = &self.nodes[src].value;
        assert_eq!(sv.rows(), idx.len());
        let mut v = Matrix::zeros(rows, sv.cols());
        for (r, &target) in idx.iter().enumerate() {
            v.row_mut(target).copy_from_slice(sv.row(r));
        }
        self.push(
            v,
            Op::ScatterRows {
                src,
                idx: idx.to_vec(),
                rows,
            },
        )
    }

    /// Pick `a[(r, c)]` for each pair into an `len × 1` column vector.
    pub fn select_elems(&mut self, a: NodeId, pairs: &[(usize, usize)]) -> NodeId {
        let av = &self.nodes[a].value;
        let data: Vec<f64> = pairs.iter().map(|&(r, c)| av[(r, c)]).collect();
        let v = Matrix::col_vector(&data);
        self.push(v, Op::SelectElems(a, pairs.to_vec()))
    }

    pub fn slice_cols(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let av = &self.nodes[a].value;
        assert!(start <= end && end <= av.cols());
        let mut v = Matrix::zeros(av.rows(), end - start);
        for r in 0..av.rows() {
            v.row_mut(r).copy_from_slice(&av.row(r)[start..end]);
        }
        self.push(v, Op::SliceCols(a, start, end))
    }

    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let mats: Vec<&Matrix> = parts.iter().map(|&p| &self.nodes[p].value).collect();
        let v = Matrix::hstack(&mats);
        self.push(v, Op::ConcatCols(parts.to_vec()))
    }

    /// Sum of all elements as a `1 × 1` matrix.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let s = self.nodes[a].value.sum();
        self.push(Matrix::from_vec(1, 1, vec![s]), Op::SumAll(a))
    }

    /// Mean of all elements as a `1 × 1` matrix.
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let m = self.nodes[a].value.mean();
        self.push(Matrix::from_vec(1, 1, vec![m]), Op::MeanAll(a))
    }

    /// Column means as a `1 × cols` row vector.
    pub fn col_means(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.col_means();
        self.push(v, Op::ColMeans(a))
    }

    // ---------------------------------------------------------------
    // Composite conveniences
    // ---------------------------------------------------------------

    /// Mean squared error between two same-shape nodes (scalar node).
    pub fn mse(&mut self, pred: NodeId, target: NodeId) -> NodeId {
        let d = self.sub(pred, target);
        let sq = self.mul(d, d);
        self.mean_all(sq)
    }

    /// Weighted MSE (paper Eq. 5): per-metric weights `w` (`1 × M` input
    /// node) applied to squared errors before averaging.
    pub fn wmse(&mut self, pred: NodeId, target: NodeId, weights: NodeId) -> NodeId {
        let d = self.sub(pred, target);
        let sq = self.mul(d, d);
        let w = self.mul_row_broadcast(sq, weights);
        self.mean_all(w)
    }

    /// Scalar value of a `1 × 1` node.
    pub fn scalar(&self, id: NodeId) -> f64 {
        let v = &self.nodes[id].value;
        assert_eq!(v.shape(), (1, 1), "scalar() requires a 1×1 node");
        v.as_slice()[0]
    }

    // ---------------------------------------------------------------
    // Backward
    // ---------------------------------------------------------------

    fn accum(&mut self, id: NodeId, g: Matrix) {
        match &mut self.nodes[id].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Backpropagate from a scalar (`1 × 1`) loss node; returns gradients
    /// for every parameter reachable from it.
    pub fn backward(&mut self, loss: NodeId) -> GradStore {
        assert_eq!(
            self.nodes[loss].value.shape(),
            (1, 1),
            "loss must be scalar"
        );
        self.nodes[loss].grad = Some(Matrix::from_vec(1, 1, vec![1.0]));
        let mut grads = self.params.zero_grads();
        // Transposes of node values, computed at most once per sweep. The
        // matmul rule needs aᵀ and bᵀ, and values feeding several matmuls
        // (e.g. the shared input of the q/k/v projections) would otherwise
        // be re-transposed per consumer.
        let mut tcache: rustc_hash::FxHashMap<NodeId, Matrix> = rustc_hash::FxHashMap::default();

        for id in (0..=loss).rev() {
            let Some(gout) = self.nodes[id].grad.take() else {
                continue;
            };
            let op = self.nodes[id].op.clone();
            match op {
                Op::Input => {}
                Op::Param(pid) => {
                    grads.accumulate(pid, &gout);
                    // Keep the grad visible for Graph::grad inspection.
                    self.nodes[id].grad = Some(gout);
                    continue;
                }
                Op::Add(a, b) => {
                    self.accum(a, gout.clone());
                    self.accum(b, gout.clone());
                }
                Op::Sub(a, b) => {
                    self.accum(a, gout.clone());
                    self.accum(b, gout.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let ga = gout.hadamard(&self.nodes[b].value);
                    let gb = gout.hadamard(&self.nodes[a].value);
                    self.accum(a, ga);
                    self.accum(b, gb);
                }
                Op::Scale(a, k) => {
                    self.accum(a, gout.scale(k));
                }
                Op::MatMul(a, b) => {
                    tcache
                        .entry(b)
                        .or_insert_with(|| self.nodes[b].value.transpose());
                    tcache
                        .entry(a)
                        .or_insert_with(|| self.nodes[a].value.transpose());
                    let ga = gout.matmul(&tcache[&b]);
                    let gb = tcache[&a].matmul(&gout);
                    self.accum(a, ga);
                    self.accum(b, gb);
                }
                Op::Transpose(a) => {
                    self.accum(a, gout.transpose());
                }
                Op::Relu(a) => {
                    let g = gout.zip(&self.nodes[a].value, |g, x| if x > 0.0 { g } else { 0.0 });
                    self.accum(a, g);
                }
                Op::Tanh(a) => {
                    let g = gout.zip(&self.nodes[id].value, |g, y| g * (1.0 - y * y));
                    self.accum(a, g);
                }
                Op::Sigmoid(a) => {
                    let g = gout.zip(&self.nodes[id].value, |g, y| g * y * (1.0 - y));
                    self.accum(a, g);
                }
                Op::Exp(a) => {
                    let g = gout.hadamard(&self.nodes[id].value);
                    self.accum(a, g);
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[id].value;
                    let mut g = gout.clone();
                    for r in 0..g.rows() {
                        let yr = y.row(r);
                        let gr = g.row_mut(r);
                        let dot: f64 = gr.iter().zip(yr).map(|(gy, yy)| gy * yy).sum();
                        for (gv, &yv) in gr.iter_mut().zip(yr) {
                            *gv = yv * (*gv - dot);
                        }
                    }
                    self.accum(a, g);
                }
                Op::LayerNorm {
                    x,
                    gamma,
                    beta,
                    eps,
                } => {
                    // Scoped immutable borrows: no value clones needed, the
                    // borrows end before the accum() calls below.
                    let (gx, ggamma, gbeta) = {
                        let xv = &self.nodes[x].value;
                        let gv = &self.nodes[gamma].value;
                        let (rows, d) = xv.shape();
                        let df = d as f64;
                        let mut gx = Matrix::zeros(rows, d);
                        let mut ggamma = Matrix::zeros(1, d);
                        let mut gbeta = Matrix::zeros(1, d);
                        for r in 0..rows {
                            let row = xv.row(r);
                            let mean = row.iter().sum::<f64>() / df;
                            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / df;
                            let inv = 1.0 / (var + eps).sqrt();
                            let xhat: Vec<f64> = row.iter().map(|v| (v - mean) * inv).collect();
                            let dy = gout.row(r);
                            // Parameter grads.
                            for i in 0..d {
                                ggamma.row_mut(0)[i] += dy[i] * xhat[i];
                                gbeta.row_mut(0)[i] += dy[i];
                            }
                            // Input grad.
                            let dxhat: Vec<f64> =
                                (0..d).map(|i| dy[i] * gv.as_slice()[i]).collect();
                            let sum_dxhat: f64 = dxhat.iter().sum();
                            let sum_dxhat_xhat: f64 =
                                dxhat.iter().zip(&xhat).map(|(a, b)| a * b).sum();
                            let out = gx.row_mut(r);
                            for i in 0..d {
                                out[i] = inv / df
                                    * (df * dxhat[i] - sum_dxhat - xhat[i] * sum_dxhat_xhat);
                            }
                        }
                        (gx, ggamma, gbeta)
                    };
                    self.accum(x, gx);
                    self.accum(gamma, ggamma);
                    self.accum(beta, gbeta);
                }
                Op::AddRowBroadcast(a, row) => {
                    self.accum(a, gout.clone());
                    self.accum(row, gout.col_sums());
                }
                Op::MulRowBroadcast(a, row) => {
                    let mut ga = gout.clone();
                    {
                        let rv = &self.nodes[row].value;
                        for r in 0..ga.rows() {
                            for (x, w) in ga.row_mut(r).iter_mut().zip(rv.as_slice()) {
                                *x *= w;
                            }
                        }
                    }
                    let grow = gout.hadamard(&self.nodes[a].value).col_sums();
                    self.accum(a, ga);
                    self.accum(row, grow);
                }
                Op::MulColBroadcast(a, col) => {
                    let mut ga = gout.clone();
                    {
                        let cv = &self.nodes[col].value;
                        for r in 0..ga.rows() {
                            let w = cv.as_slice()[r];
                            for x in ga.row_mut(r).iter_mut() {
                                *x *= w;
                            }
                        }
                    }
                    let gcol = gout.hadamard(&self.nodes[a].value).row_sums();
                    self.accum(a, ga);
                    self.accum(col, gcol);
                }
                Op::GatherRows(a, idx) => {
                    let cols = gout.cols();
                    let mut g = Matrix::zeros(self.nodes[a].value.rows(), cols);
                    for (r, &src) in idx.iter().enumerate() {
                        for (slot, &v) in g.row_mut(src).iter_mut().zip(gout.row(r)) {
                            *slot += v;
                        }
                    }
                    self.accum(a, g);
                }
                Op::ScatterRows { src, idx, rows } => {
                    debug_assert_eq!(gout.rows(), rows);
                    let g = gout.gather_rows(&idx);
                    self.accum(src, g);
                }
                Op::SelectElems(a, pairs) => {
                    let av_shape = self.nodes[a].value.shape();
                    let mut g = Matrix::zeros(av_shape.0, av_shape.1);
                    for (k, &(r, c)) in pairs.iter().enumerate() {
                        g[(r, c)] += gout.as_slice()[k];
                    }
                    self.accum(a, g);
                }
                Op::SliceCols(a, start, _end) => {
                    let (rows, cols) = self.nodes[a].value.shape();
                    let mut g = Matrix::zeros(rows, cols);
                    for r in 0..rows {
                        for (c, &v) in gout.row(r).iter().enumerate() {
                            g[(r, start + c)] = v;
                        }
                    }
                    self.accum(a, g);
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for p in parts {
                        let w = self.nodes[p].value.cols();
                        let rows = gout.rows();
                        let mut g = Matrix::zeros(rows, w);
                        for r in 0..rows {
                            g.row_mut(r).copy_from_slice(&gout.row(r)[off..off + w]);
                        }
                        self.accum(p, g);
                        off += w;
                    }
                }
                Op::SumAll(a) => {
                    let s = gout.as_slice()[0];
                    let (r, c) = self.nodes[a].value.shape();
                    self.accum(a, Matrix::filled(r, c, s));
                }
                Op::MeanAll(a) => {
                    let (r, c) = self.nodes[a].value.shape();
                    let s = gout.as_slice()[0] / (r * c).max(1) as f64;
                    self.accum(a, Matrix::filled(r, c, s));
                }
                Op::ColMeans(a) => {
                    let (r, c) = self.nodes[a].value.shape();
                    let mut g = Matrix::zeros(r, c);
                    for rr in 0..r {
                        for (slot, &v) in g.row_mut(rr).iter_mut().zip(gout.as_slice()) {
                            *slot = v / r as f64;
                        }
                    }
                    self.accum(a, g);
                }
            }
            self.nodes[id].grad = Some(gout);
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;

    #[test]
    fn scalar_chain_gradient() {
        // f(w) = mean((w * 3)²) over a 2×2 param.
        let mut params = ParamStore::new(1);
        let w = params.add("w", Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]));
        let mut g = Graph::new(&params);
        let wn = g.param(w);
        let s = g.scale(wn, 3.0);
        let sq = g.mul(s, s);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        // d/dw mean(9w²) = 18w/4.
        for (gv, wv) in grads.get(w).as_slice().iter().zip(params.get(w).as_slice()) {
            assert!((gv - 18.0 * wv / 4.0).abs() < 1e-10);
        }
    }

    #[test]
    fn matmul_gradcheck() {
        check_gradients(3, &[(2, 3), (3, 4)], |g, ps| {
            let a = g.param(ps[0]);
            let b = g.param(ps[1]);
            let c = g.matmul(a, b);
            let sq = g.mul(c, c);
            g.mean_all(sq)
        });
    }

    #[test]
    fn elementwise_ops_gradcheck() {
        check_gradients(5, &[(3, 3), (3, 3)], |g, ps| {
            let a = g.param(ps[0]);
            let b = g.param(ps[1]);
            let t = g.tanh(a);
            let s = g.sigmoid(b);
            let m = g.mul(t, s);
            let e = g.exp(m);
            let r = g.relu(e);
            g.mean_all(r)
        });
    }

    #[test]
    fn softmax_gradcheck() {
        check_gradients(7, &[(4, 5)], |g, ps| {
            let a = g.param(ps[0]);
            let sm = g.softmax_rows(a);
            // Asymmetric functional so gradients are nontrivial.
            let sq = g.mul(sm, sm);
            let s = g.sum_all(sq);
            g.scale(s, 0.5)
        });
    }

    #[test]
    fn layernorm_gradcheck() {
        check_gradients(11, &[(4, 6), (1, 6), (1, 6)], |g, ps| {
            let x = g.param(ps[0]);
            let gamma = g.param(ps[1]);
            let beta = g.param(ps[2]);
            let y = g.layer_norm(x, gamma, beta);
            let sq = g.mul(y, y);
            g.mean_all(sq)
        });
    }

    #[test]
    fn broadcast_ops_gradcheck() {
        check_gradients(13, &[(4, 3), (1, 3), (4, 1)], |g, ps| {
            let a = g.param(ps[0]);
            let row = g.param(ps[1]);
            let col = g.param(ps[2]);
            let x = g.add_row_broadcast(a, row);
            let y = g.mul_row_broadcast(x, row);
            let z = g.mul_col_broadcast(y, col);
            let sq = g.mul(z, z);
            g.mean_all(sq)
        });
    }

    #[test]
    fn gather_scatter_select_gradcheck() {
        check_gradients(17, &[(5, 3)], |g, ps| {
            let a = g.param(ps[0]);
            let gathered = g.gather_rows(a, &[4, 0, 2]);
            let scattered = g.scatter_rows(gathered, &[1, 3, 0], 5);
            let picked = g.select_elems(scattered, &[(0, 0), (1, 2), (3, 1)]);
            let sq = g.mul(picked, picked);
            g.sum_all(sq)
        });
    }

    #[test]
    fn slice_concat_gradcheck() {
        check_gradients(19, &[(3, 6)], |g, ps| {
            let a = g.param(ps[0]);
            let left = g.slice_cols(a, 0, 3);
            let right = g.slice_cols(a, 3, 6);
            let prod = g.mul(left, right);
            let cat = g.concat_cols(&[prod, left]);
            let sq = g.mul(cat, cat);
            g.mean_all(sq)
        });
    }

    #[test]
    fn reductions_and_losses_gradcheck() {
        check_gradients(23, &[(4, 4), (1, 4)], |g, ps| {
            let a = g.param(ps[0]);
            let w = g.param(ps[1]);
            let target = g.input(Matrix::filled(4, 4, 0.3));
            let l1 = g.wmse(a, target, w);
            let cm = g.col_means(a);
            let cm2 = g.mul(cm, cm);
            let l2 = g.sum_all(cm2);
            let tot = g.add(l1, l2);
            g.scale(tot, 1.0)
        });
    }

    #[test]
    fn transpose_gradcheck() {
        check_gradients(29, &[(3, 5)], |g, ps| {
            let a = g.param(ps[0]);
            let at = g.transpose(a);
            let prod = g.matmul(a, at);
            let sq = g.mul(prod, prod);
            g.mean_all(sq)
        });
    }

    #[test]
    fn gradient_accumulates_over_shared_subexpression() {
        // y = w + w → dy/dw = 2.
        let mut params = ParamStore::new(2);
        let w = params.add("w", Matrix::filled(2, 2, 1.5));
        let mut g = Graph::new(&params);
        let wn = g.param(w);
        let y = g.add(wn, wn);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert!(grads
            .get(w)
            .as_slice()
            .iter()
            .all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn unreachable_nodes_get_no_grad() {
        let mut params = ParamStore::new(3);
        let w = params.add("w", Matrix::filled(1, 1, 1.0));
        let u = params.add("u", Matrix::filled(1, 1, 1.0));
        let mut g = Graph::new(&params);
        let wn = g.param(w);
        let _un = g.param(u); // unused
        let loss = g.sum_all(wn);
        let grads = g.backward(loss);
        assert_eq!(grads.get(w).as_slice()[0], 1.0);
        assert_eq!(grads.get(u).as_slice()[0], 0.0);
    }

    #[test]
    fn mse_value_is_correct() {
        let params = ParamStore::new(4);
        let mut g = Graph::new(&params);
        let a = g.input(Matrix::from_rows(&[vec![1.0, 2.0]]));
        let b = g.input(Matrix::from_rows(&[vec![0.0, 4.0]]));
        let l = g.mse(a, b);
        assert!((g.scalar(l) - 2.5).abs() < 1e-12); // (1 + 4)/2
    }
}
