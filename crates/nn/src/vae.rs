//! Variational autoencoder — the substrate for the Prodigy baseline
//! (VAE-based unsupervised anomaly detection over per-window features).

use crate::layers::Linear;
use crate::params::ParamStore;
use crate::tape::{Graph, NodeId};
use ns_linalg::matrix::Matrix;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Gaussian-latent VAE with one hidden layer on each side.
#[derive(Clone, Debug)]
pub struct Vae {
    pub enc_hidden: Linear,
    pub enc_mu: Linear,
    pub enc_logvar: Linear,
    pub dec_hidden: Linear,
    pub dec_out: Linear,
    pub input_dim: usize,
    pub latent_dim: usize,
}

impl Vae {
    pub fn new(
        params: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        latent_dim: usize,
    ) -> Self {
        Self {
            enc_hidden: Linear::new(params, &format!("{name}.enc_h"), input_dim, hidden_dim),
            enc_mu: Linear::new(params, &format!("{name}.mu"), hidden_dim, latent_dim),
            enc_logvar: Linear::new(params, &format!("{name}.logvar"), hidden_dim, latent_dim),
            dec_hidden: Linear::new(params, &format!("{name}.dec_h"), latent_dim, hidden_dim),
            dec_out: Linear::new(params, &format!("{name}.dec_o"), hidden_dim, input_dim),
            input_dim,
            latent_dim,
        }
    }

    /// Encode a batch (`n × input_dim`) to `(mu, logvar)` nodes.
    pub fn encode(&self, g: &mut Graph<'_>, x: NodeId) -> (NodeId, NodeId) {
        let h_lin = self.enc_hidden.forward(g, x);
        let h = g.relu(h_lin);
        (self.enc_mu.forward(g, h), self.enc_logvar.forward(g, h))
    }

    /// Decode latent codes (`n × latent_dim`) back to the input space.
    pub fn decode(&self, g: &mut Graph<'_>, z: NodeId) -> NodeId {
        let h_lin = self.dec_hidden.forward(g, z);
        let h = g.relu(h_lin);
        self.dec_out.forward(g, h)
    }

    /// Reparameterised forward pass with externally supplied standard
    /// normal noise `eps` (same shape as the latent batch). Returns
    /// `(reconstruction, mu, logvar)`.
    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId, eps: &Matrix) -> (NodeId, NodeId, NodeId) {
        let (mu, logvar) = self.encode(g, x);
        let half = g.scale(logvar, 0.5);
        let std = g.exp(half);
        let e = g.input(eps.clone());
        let noise = g.mul(std, e);
        let z = g.add(mu, noise);
        let recon = self.decode(g, z);
        (recon, mu, logvar)
    }

    /// ELBO-style loss: `MSE + beta · KL` where
    /// `KL = −0.5 · mean(1 + logvar − mu² − exp(logvar))`.
    pub fn loss(&self, g: &mut Graph<'_>, x: NodeId, eps: &Matrix, beta: f64) -> NodeId {
        let (recon, mu, logvar) = self.forward(g, x, eps);
        let mse = g.mse(recon, x);
        let ones = g.input(Matrix::filled(g.value(mu).rows(), g.value(mu).cols(), 1.0));
        let mu2 = g.mul(mu, mu);
        let ev = g.exp(logvar);
        let t1 = g.add(ones, logvar);
        let t2 = g.sub(t1, mu2);
        let t3 = g.sub(t2, ev);
        let kl_mean = g.mean_all(t3);
        let kl = g.scale(kl_mean, -0.5);
        let kl_w = g.scale(kl, beta);
        g.add(mse, kl_w)
    }

    /// Deterministic reconstruction error per row (anomaly score):
    /// decodes the latent mean, no sampling.
    pub fn reconstruction_errors(&self, params: &ParamStore, data: &Matrix) -> Vec<f64> {
        let mut g = Graph::new(params);
        let x = g.input(data.clone());
        let (mu, _) = self.encode(&mut g, x);
        let recon = self.decode(&mut g, mu);
        let rv = g.value(recon);
        let xv = g.value(x);
        (0..data.rows())
            .map(|r| {
                rv.row(r)
                    .iter()
                    .zip(xv.row(r))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    / data.cols().max(1) as f64
            })
            .collect()
    }
}

/// Standard-normal noise matrix for the reparameterisation trick
/// (Box–Muller over a seeded ChaCha stream).
pub fn standard_normal(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    #[test]
    fn normal_noise_moments() {
        let m = standard_normal(100, 10, 7);
        let mean = m.mean();
        let var = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / m.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn vae_learns_to_reconstruct() {
        let mut params = ParamStore::new(11);
        let vae = Vae::new(&mut params, "vae", 6, 16, 3);
        let data = Matrix::from_fn(20, 6, |r, c| ((r as f64 * 0.3 + c as f64) * 0.5).sin());
        let mut opt = Adam::new(3e-3);
        let mut first = None;
        let mut last = 0.0;
        for epoch in 0..300 {
            let eps = standard_normal(20, 3, epoch as u64);
            let (loss, grads) = {
                let mut g = Graph::new(&params);
                let x = g.input(data.clone());
                let l = vae.loss(&mut g, x, &eps, 1e-3);
                (g.scalar(l), g.backward(l))
            };
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
            opt.step(&mut params, &grads);
        }
        assert!(
            last < first.unwrap() * 0.3,
            "VAE failed to learn: {first:?} → {last}"
        );
    }

    #[test]
    fn anomalies_reconstruct_worse_than_normals() {
        let mut params = ParamStore::new(12);
        let vae = Vae::new(&mut params, "vae", 4, 12, 2);
        let normal = Matrix::from_fn(30, 4, |r, c| ((r + c) as f64 * 0.2).sin() * 0.5);
        let mut opt = Adam::new(3e-3);
        for epoch in 0..300 {
            let eps = standard_normal(30, 2, 1000 + epoch as u64);
            let grads = {
                let mut g = Graph::new(&params);
                let x = g.input(normal.clone());
                let l = vae.loss(&mut g, x, &eps, 1e-3);
                g.backward(l)
            };
            opt.step(&mut params, &grads);
        }
        let normal_err: f64 = {
            let errs = vae.reconstruction_errors(&params, &normal);
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        let anomalous = normal.map(|v| v + 3.0);
        let anom_err: f64 = {
            let errs = vae.reconstruction_errors(&params, &anomalous);
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        assert!(
            anom_err > normal_err * 3.0,
            "normal {normal_err} anomalous {anom_err}"
        );
    }

    #[test]
    fn kl_pulls_latents_toward_prior() {
        // With a large beta, mu should collapse toward 0.
        let mut params = ParamStore::new(13);
        let vae = Vae::new(&mut params, "vae", 4, 8, 2);
        let data = Matrix::from_fn(10, 4, |r, c| (r as f64 + c as f64) * 0.1);
        let mut opt = Adam::new(5e-3);
        for epoch in 0..200 {
            let eps = standard_normal(10, 2, 2000 + epoch as u64);
            let grads = {
                let mut g = Graph::new(&params);
                let x = g.input(data.clone());
                let l = vae.loss(&mut g, x, &eps, 10.0);
                g.backward(l)
            };
            opt.step(&mut params, &grads);
        }
        let mut g = Graph::new(&params);
        let x = g.input(data.clone());
        let (mu, _) = vae.encode(&mut g, x);
        assert!(
            g.value(mu).max_abs() < 0.5,
            "mu {:?}",
            g.value(mu).max_abs()
        );
    }
}
