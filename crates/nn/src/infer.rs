//! Tape-free inference fast path.
//!
//! Training needs the autodiff tape; serving does not. An
//! [`InferenceSession`] executes the [`ReconstructionTransformer`] forward
//! pass with **no tape**: every intermediate lives in a preallocated
//! scratch [`Matrix`] that is reshaped in place per call, so steady-state
//! scoring performs **zero heap allocations** per window (proved by the
//! counting-allocator test in `tests/infer_zero_alloc.rs`).
//!
//! Linear layers multiply the [`ParamStore`] weights *in their stored
//! orientation* through the blocked-axpy [`Matrix::matmul_into`] kernel —
//! the same kernel the tape uses, so bit-identity is by construction, and
//! the axpy form vectorises across output columns. A prepacked-transpose
//! design (row-dot over `Wᵀ`, [`Matrix::matmul_pre_t_into`]) was built and
//! benchmarked first, but under the no-reassociation constraint each dot
//! is a serial FP-add dependency chain and measured ~30% slower than the
//! axpy kernel even with 4-way interleaving; the dot kernel is kept only
//! where its operand is *naturally* pre-transposed — attention scores
//! `qₕ·kₕᵀ` — where it replaces the tape's per-head `transpose(kₕ)`
//! materialisation. Reading weights live also means a session can never
//! be stale: `incremental_update` fine-tuning is visible on the very next
//! forward, with no cache-invalidation protocol
//! (cf. [`ParamStore::version`]).
//!
//! # Bit-exactness
//!
//! The fast path is bit-identical to the taped forward (verified by
//! `tests/infer_equivalence.rs` over random shapes, seeds and block
//! kinds). The argument:
//!
//! * Linears run the tape's own matmul-then-bias-broadcast kernels on the
//!   same operands.
//! * Attention scores `qₕ·kₕᵀ` use the row-dot kernel with `kₕ` as the
//!   pre-transposed operand; it sums each output element over `k` in the
//!   same ascending order as the axpy kernel, so it is bit-identical to
//!   `matmul(qₕ, transpose(kₕ))` without materialising the transpose.
//! * Elementwise ops (softmax, layer norm, ReLU, residual adds, scaling,
//!   bias broadcast) reuse the tape's exact expressions and loop orders.
//! * MoE routing replicates `top_k_indices` tie-breaking exactly
//!   (descending value, ties to the lower index), runs experts on the
//!   same gathered token subsets in the same ascending-expert order, and
//!   accumulates through the same full-size scatter-then-add sequence.

use crate::layers::Linear;
use crate::params::ParamStore;
use crate::transformer::{EncoderLayer, ReconstructionTransformer};
use ns_linalg::matrix::Matrix;
use ns_linalg::matrix_f32::MatrixF32;
use std::cmp::Ordering;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Mutex;

/// Upper bound on stacked rows per batched forward sub-batch
/// ([`InferenceSession::score_windows_batch`]). At ~15 live scratch
/// matrices of `rows × d_model` doubles, 512 rows keeps the working set
/// around the L2 capacity of a current server core — and, more
/// importantly, bounds the session scratch a worst-case burst can pin:
/// pooled sessions never shrink, so one unbounded stack (e.g. a
/// shutdown flush batching every node's tail segment) would otherwise
/// leave tens of MB of scratch allocated for the pool's lifetime. One
/// window always forms a sub-batch even if longer. Grouping is
/// unobservable in the output (windows are arithmetically independent),
/// so this is purely a locality/footprint knob.
const BATCH_ROW_BUDGET: usize = 512;

/// Process-global switch for the inference fast path (default: on).
/// Scoring call sites branch on this, so equivalence tests can run the
/// same workload through both the taped and the tape-free forward.
static FAST_PATH: AtomicBool = AtomicBool::new(true);

/// Is the tape-free scoring path enabled?
pub fn fast_path_enabled() -> bool {
    FAST_PATH.load(AtomicOrdering::Relaxed)
}

/// Enable or disable the tape-free scoring path process-wide.
pub fn set_fast_path(on: bool) {
    FAST_PATH.store(on, AtomicOrdering::Relaxed);
}

/// One window of a batched scoring call
/// ([`InferenceSession::score_windows_batch`]): rows `[start, end)` of
/// `data`, positions from `pos_of` (a per-window closure, because the
/// position scale depends on the owning series' length and pre-dividing
/// it would not be bit-identical), and per-metric error weights.
pub struct WindowSpec<'a> {
    pub data: &'a Matrix,
    pub start: usize,
    pub end: usize,
    pub pos_of: &'a (dyn Fn(usize) -> f64 + 'a),
    pub weights: &'a [f64],
}

/// Reusable tape-free forward-pass executor for one
/// [`ReconstructionTransformer`].
///
/// A session is cheap to create but expensive to warm (first call per
/// shape allocates its scratch); keep one per worker thread — e.g. via a
/// [`SessionPool`] — and reuse it across windows.
#[derive(Default)]
pub struct InferenceSession {
    // Scratch buffers, reshaped in place per call.
    x: Matrix,
    pe: Matrix,
    h: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    qh: Matrix,
    kh: Matrix,
    vh: Matrix,
    scores: Matrix,
    head: Matrix,
    cat: Matrix,
    attn: Matrix,
    res1: Matrix,
    n1: Matrix,
    gate: Matrix,
    xe: Matrix,
    hid: Matrix,
    ye: Matrix,
    full: Matrix,
    block: Matrix,
    res2: Matrix,
    out: Matrix,
    err: Vec<f64>,
    assign: Vec<Vec<usize>>,
    order: Vec<usize>,
    /// Row offsets of each window inside the stacked batch scratch
    /// (`boffsets[b]..boffsets[b+1]` are window `b`'s rows).
    boffsets: Vec<usize>,
    /// Per-window MoE accumulator-initialised flags for the batched block.
    binit: Vec<bool>,
    /// Per-dimension divisors of the sinusoidal encoding — they depend
    /// only on `(i, d_model)`, so the `powf` runs once per session, not
    /// once per element.
    pe_div: Vec<f64>,
}

impl InferenceSession {
    pub fn new() -> Self {
        Self::default()
    }

    /// Tape-free forward of a `T × input_dim` window with a precomputed
    /// positional-encoding table. Returns the reconstruction, borrowed
    /// from the session's scratch (valid until the next call).
    pub fn forward(
        &mut self,
        params: &ParamStore,
        model: &ReconstructionTransformer,
        x: &Matrix,
        pe: &Matrix,
    ) -> &Matrix {
        self.x.resize(x.rows(), x.cols());
        self.x.as_mut_slice().copy_from_slice(x.as_slice());
        self.pe.resize(pe.rows(), pe.cols());
        self.pe.as_mut_slice().copy_from_slice(pe.as_slice());
        self.forward_scratch(params, model);
        &self.out
    }

    /// Score one window of a longer series: fills the input scratch from
    /// `data[start..end)`, builds the positional encoding from `pos_of`
    /// (bit-identical to `sinusoidal_pe_at`), runs the forward, and
    /// returns per-row weighted reconstruction errors — the exact
    /// arithmetic of the taped `score_series_raw`. The slice is borrowed
    /// from the session's scratch.
    #[allow(clippy::too_many_arguments)]
    pub fn score_window(
        &mut self,
        params: &ParamStore,
        model: &ReconstructionTransformer,
        data: &Matrix,
        start: usize,
        end: usize,
        pos_of: impl Fn(usize) -> f64,
        weights: &[f64],
    ) -> &[f64] {
        let t = end - start;
        let m = data.cols();
        self.x.resize(t, m);
        for r in 0..t {
            self.x.row_mut(r).copy_from_slice(data.row(start + r));
        }
        let d_model = model.cfg.d_model;
        if self.pe_div.len() != d_model {
            self.pe_div.clear();
            self.pe_div.extend(
                (0..d_model).map(|i| (10000.0_f64).powf((2 * (i / 2)) as f64 / d_model as f64)),
            );
        }
        self.pe.resize(t, d_model);
        for r in 0..t {
            let p = pos_of(start + r);
            // Same expression as `sinusoidal_pe_value` with the divisor
            // hoisted — bit-identical to `sinusoidal_pe_at`.
            for (i, (slot, &div)) in self.pe.row_mut(r).iter_mut().zip(&self.pe_div).enumerate() {
                *slot = if i % 2 == 0 {
                    (p / div).sin()
                } else {
                    (p / div).cos()
                };
            }
        }
        self.forward_scratch(params, model);
        self.err.clear();
        for r in 0..t {
            let e = self
                .x
                .row(r)
                .iter()
                .zip(self.out.row(r))
                .zip(weights)
                .map(|((a, b), w)| w * (a - b) * (a - b))
                .sum::<f64>()
                / m.max(1) as f64;
            self.err.push(e);
        }
        &self.err
    }

    /// Batched forward of `B` windows stacked row-major into one scratch
    /// batch: every linear layer runs as **one** `matmul_into` over all
    /// `Σ T_b` rows, while attention and the MoE scatter replicate the
    /// single-window tape per window over its row range. Returns the
    /// stacked reconstruction plus the `B + 1` row offsets delimiting each
    /// window (both borrowed from the session's scratch).
    ///
    /// Output rows are `to_bits`-identical to `B` independent
    /// [`InferenceSession::forward`] calls: the blocked-axpy kernel
    /// accumulates each output row independently over ascending `k`, so
    /// vstacking rows changes nothing per row; the remaining ops are
    /// row-wise or explicitly per-window (see DESIGN §10).
    ///
    /// All windows must share the model's input width; `T_b` may differ
    /// per window. An empty slice yields an empty reconstruction.
    pub fn forward_batch(
        &mut self,
        params: &ParamStore,
        model: &ReconstructionTransformer,
        windows: &[(&Matrix, &Matrix)],
    ) -> (&Matrix, &[usize]) {
        let m = windows.first().map(|(x, _)| x.cols()).unwrap_or(0);
        let d_model = model.cfg.d_model;
        self.boffsets.clear();
        self.boffsets.push(0);
        let mut total = 0usize;
        for (x, pe) in windows {
            assert_eq!(x.cols(), m, "all windows must share input width");
            assert_eq!(pe.rows(), x.rows(), "pe must have one row per input row");
            assert_eq!(pe.cols(), d_model, "pe width must equal d_model");
            total += x.rows();
            self.boffsets.push(total);
        }
        if windows.is_empty() {
            self.out.resize(0, 0);
            return (&self.out, &self.boffsets);
        }
        self.x.resize(total, m);
        self.pe.resize(total, d_model);
        for (b, (x, pe)) in windows.iter().enumerate() {
            let r0 = self.boffsets[b];
            for r in 0..x.rows() {
                self.x.row_mut(r0 + r).copy_from_slice(x.row(r));
                self.pe.row_mut(r0 + r).copy_from_slice(pe.row(r));
            }
        }
        self.forward_scratch_batch(params, model);
        (&self.out, &self.boffsets)
    }

    /// Batched analogue of [`InferenceSession::score_window`]: stacks
    /// `specs` into row-budgeted sub-batches, runs [`forward_batch`]'s
    /// pipeline per sub-batch, and returns the concatenated per-row
    /// weighted reconstruction errors (window `b`'s errors are the
    /// `specs[b].end - specs[b].start` slots after those of windows
    /// `0..b`). Each window's error slice is bit-identical to a
    /// standalone `score_window` call — windows are arithmetically
    /// independent, so the sub-batch grouping is unobservable in the
    /// output.
    ///
    /// Sub-batches are capped at `BATCH_ROW_BUDGET` stacked rows so the
    /// ~15 live scratch matrices stay cache-resident: one unbounded stack
    /// measurably loses to the per-window loop on large bursts purely
    /// through L2 eviction between the forward's passes.
    ///
    /// [`forward_batch`]: InferenceSession::forward_batch
    pub fn score_windows_batch(
        &mut self,
        params: &ParamStore,
        model: &ReconstructionTransformer,
        specs: &[WindowSpec<'_>],
    ) -> &[f64] {
        self.err.clear();
        if specs.is_empty() {
            self.boffsets.clear();
            self.boffsets.push(0);
            return &self.err;
        }
        let d_model = model.cfg.d_model;
        if self.pe_div.len() != d_model {
            self.pe_div.clear();
            self.pe_div.extend(
                (0..d_model).map(|i| (10000.0_f64).powf((2 * (i / 2)) as f64 / d_model as f64)),
            );
        }
        let m = specs[0].data.cols();
        let mut i = 0;
        while i < specs.len() {
            let mut rows = specs[i].end - specs[i].start;
            let mut j = i + 1;
            while j < specs.len() {
                let r = specs[j].end - specs[j].start;
                if rows + r > BATCH_ROW_BUDGET {
                    break;
                }
                rows += r;
                j += 1;
            }
            self.score_windows_chunk(params, model, &specs[i..j], m);
            i = j;
        }
        &self.err
    }

    /// One row-budgeted sub-batch of [`score_windows_batch`]: stack,
    /// forward, append per-row errors to `self.err`.
    ///
    /// [`score_windows_batch`]: InferenceSession::score_windows_batch
    fn score_windows_chunk(
        &mut self,
        params: &ParamStore,
        model: &ReconstructionTransformer,
        specs: &[WindowSpec<'_>],
        m: usize,
    ) {
        let d_model = model.cfg.d_model;
        self.boffsets.clear();
        self.boffsets.push(0);
        let mut total = 0usize;
        for s in specs {
            assert_eq!(s.data.cols(), m, "all windows must share input width");
            total += s.end - s.start;
            self.boffsets.push(total);
        }
        self.x.resize(total, m);
        self.pe.resize(total, d_model);
        for (b, s) in specs.iter().enumerate() {
            let r0 = self.boffsets[b];
            for r in 0..s.end - s.start {
                self.x
                    .row_mut(r0 + r)
                    .copy_from_slice(s.data.row(s.start + r));
                let p = (s.pos_of)(s.start + r);
                // Same expression as `score_window`'s PE fill.
                for (i, (slot, &div)) in self
                    .pe
                    .row_mut(r0 + r)
                    .iter_mut()
                    .zip(&self.pe_div)
                    .enumerate()
                {
                    *slot = if i % 2 == 0 {
                        (p / div).sin()
                    } else {
                        (p / div).cos()
                    };
                }
            }
        }
        self.forward_scratch_batch(params, model);
        for (b, s) in specs.iter().enumerate() {
            let r0 = self.boffsets[b];
            for r in 0..s.end - s.start {
                let e = self
                    .x
                    .row(r0 + r)
                    .iter()
                    .zip(self.out.row(r0 + r))
                    .zip(s.weights)
                    .map(|((a, o), w)| w * (a - o) * (a - o))
                    .sum::<f64>()
                    / m.max(1) as f64;
                self.err.push(e);
            }
        }
    }

    /// The forward pass proper, reading `self.x` / `self.pe`, leaving the
    /// reconstruction in `self.out`.
    fn forward_scratch(&mut self, params: &ParamStore, model: &ReconstructionTransformer) {
        // h = embed(x) + pe
        linear_into(&self.x, params, &model.embed, &mut self.h);
        self.h.add_assign(&self.pe);
        for layer in &model.layers {
            self.encoder_layer(params, layer);
        }
        linear_into(&self.h, params, &model.decoder, &mut self.out);
    }

    /// One encoder layer over the `self.h` carrier (post-norm residual
    /// blocks, exactly as `EncoderLayer::forward`).
    fn encoder_layer(&mut self, params: &ParamStore, layer: &EncoderLayer) {
        let t = self.h.rows();
        let mha = &layer.attn;
        let d_model = mha.d_model;
        let dh = d_model / mha.n_heads;
        let scale = 1.0 / (dh as f64).sqrt();
        linear_into(&self.h, params, &mha.wq, &mut self.q);
        linear_into(&self.h, params, &mha.wk, &mut self.k);
        linear_into(&self.h, params, &mha.wv, &mut self.v);
        self.cat.resize(t, d_model);
        for hd in 0..mha.n_heads {
            let lo = hd * dh;
            let hi = lo + dh;
            slice_cols_into(&self.q, lo, hi, &mut self.qh);
            slice_cols_into(&self.k, lo, hi, &mut self.kh);
            slice_cols_into(&self.v, lo, hi, &mut self.vh);
            // scores = qh · khᵀ; kh is naturally the pre-transposed
            // operand, so no transpose is materialised.
            self.qh.matmul_pre_t_into(&self.kh, &mut self.scores);
            self.scores.map_inplace(|x| x * scale);
            softmax_rows_inplace(&mut self.scores);
            self.scores.matmul_into(&self.vh, &mut self.head);
            for r in 0..t {
                self.cat.row_mut(r)[lo..hi].copy_from_slice(self.head.row(r));
            }
        }
        linear_into(&self.cat, params, &mha.wo, &mut self.attn);
        add_into(&self.h, &self.attn, &mut self.res1);
        layer_norm_into(
            &self.res1,
            params.get(layer.norm1.gamma),
            params.get(layer.norm1.beta),
            &mut self.n1,
        );
        match (&layer.moe, &layer.ffn) {
            (Some(moe), _) => self.moe_block(params, moe),
            (None, Some(ffn)) => {
                linear_into(&self.n1, params, &ffn.lin1, &mut self.hid);
                self.hid.map_inplace(|x| x.max(0.0));
                linear_into(&self.hid, params, &ffn.lin2, &mut self.block);
            }
            _ => unreachable!("layer has either moe or ffn"),
        }
        add_into(&self.n1, &self.block, &mut self.res2);
        // h no longer read past res1 — overwrite it with this layer's output.
        layer_norm_into(
            &self.res2,
            params.get(layer.norm2.gamma),
            params.get(layer.norm2.beta),
            &mut self.h,
        );
    }

    /// Sparse-MoE block over `self.n1` into `self.block`, replicating
    /// `MoeLayer::forward` (inference skips only the aux loss, which the
    /// scoring path never reads).
    fn moe_block(&mut self, params: &ParamStore, moe: &crate::moe::MoeLayer) {
        let t = self.n1.rows();
        let d = self.n1.cols();
        let n_exp = moe.experts.len();
        // Gate probabilities p = softmax(n1 · Wr).
        self.n1.matmul_into(params.get(moe.gate), &mut self.gate);
        softmax_rows_inplace(&mut self.gate);
        // Top-k routing with top_k_indices' exact tie-breaking.
        if self.assign.len() < n_exp {
            self.assign.resize_with(n_exp, Vec::new);
        }
        for a in &mut self.assign[..n_exp] {
            a.clear();
        }
        for tok in 0..t {
            let row = self.gate.row(tok);
            top_k_into(row, moe.top_k, &mut self.order);
            for &e in &self.order {
                self.assign[e].push(tok);
            }
        }
        let mut init = false;
        for (e, expert) in moe.experts.iter().enumerate() {
            let idx = &self.assign[e];
            if idx.is_empty() {
                continue;
            }
            // xe = gather(n1, idx)
            self.xe.resize(idx.len(), d);
            for (r, &tok) in idx.iter().enumerate() {
                self.xe.row_mut(r).copy_from_slice(self.n1.row(tok));
            }
            // ye = expert(xe) = lin2(relu(lin1(xe)))
            linear_into(&self.xe, params, &expert.lin1, &mut self.hid);
            self.hid.map_inplace(|x| x.max(0.0));
            linear_into(&self.hid, params, &expert.lin2, &mut self.ye);
            // Gate-weight each token's row, scatter to full size, and
            // accumulate with a full-matrix add — the tape's exact
            // sequence (including the adds over untouched zero rows).
            for (r, &tok) in idx.iter().enumerate() {
                let w = self.gate[(tok, e)];
                for x in self.ye.row_mut(r).iter_mut() {
                    *x *= w;
                }
            }
            self.full.resize(t, d);
            for (r, &tok) in idx.iter().enumerate() {
                self.full.row_mut(tok).copy_from_slice(self.ye.row(r));
            }
            if init {
                self.block.add_assign(&self.full);
            } else {
                self.block.resize(t, d);
                self.block
                    .as_mut_slice()
                    .copy_from_slice(self.full.as_slice());
                init = true;
            }
        }
        if !init {
            // No assignments (empty input): tape falls back to x · 0.0.
            self.block.resize(t, d);
            for (o, &v) in self.block.as_mut_slice().iter_mut().zip(self.n1.as_slice()) {
                *o = v * 0.0;
            }
        }
    }

    /// Batched forward pass, reading the stacked `self.x` / `self.pe` and
    /// `self.boffsets`, leaving the stacked reconstruction in `self.out`.
    /// Every linear layer is one kernel call over all rows; only the
    /// cross-row ops (attention, MoE accumulation) iterate windows.
    fn forward_scratch_batch(&mut self, params: &ParamStore, model: &ReconstructionTransformer) {
        linear_into(&self.x, params, &model.embed, &mut self.h);
        self.h.add_assign(&self.pe);
        for layer in &model.layers {
            self.encoder_layer_batch(params, layer);
        }
        linear_into(&self.h, params, &model.decoder, &mut self.out);
    }

    /// One encoder layer over the stacked carrier. Identical arithmetic to
    /// [`InferenceSession::encoder_layer`] per window: the q/k/v/wo/FFN
    /// linears and the norm/residual ops are row-wise (batched whole), and
    /// attention runs per `(window, head)` over that window's row range so
    /// no window ever attends across another.
    fn encoder_layer_batch(&mut self, params: &ParamStore, layer: &EncoderLayer) {
        let total = self.h.rows();
        let mha = &layer.attn;
        let d_model = mha.d_model;
        let dh = d_model / mha.n_heads;
        let scale = 1.0 / (dh as f64).sqrt();
        linear_into(&self.h, params, &mha.wq, &mut self.q);
        linear_into(&self.h, params, &mha.wk, &mut self.k);
        linear_into(&self.h, params, &mha.wv, &mut self.v);
        self.cat.resize(total, d_model);
        for b in 0..self.boffsets.len() - 1 {
            let (r0, r1) = (self.boffsets[b], self.boffsets[b + 1]);
            for hd in 0..mha.n_heads {
                let lo = hd * dh;
                let hi = lo + dh;
                slice_block_into(&self.q, r0, r1, lo, hi, &mut self.qh);
                slice_block_into(&self.k, r0, r1, lo, hi, &mut self.kh);
                slice_block_into(&self.v, r0, r1, lo, hi, &mut self.vh);
                self.qh.matmul_pre_t_into(&self.kh, &mut self.scores);
                self.scores.map_inplace(|x| x * scale);
                softmax_rows_inplace(&mut self.scores);
                self.scores.matmul_into(&self.vh, &mut self.head);
                for r in r0..r1 {
                    self.cat.row_mut(r)[lo..hi].copy_from_slice(self.head.row(r - r0));
                }
            }
        }
        linear_into(&self.cat, params, &mha.wo, &mut self.attn);
        add_into(&self.h, &self.attn, &mut self.res1);
        layer_norm_into(
            &self.res1,
            params.get(layer.norm1.gamma),
            params.get(layer.norm1.beta),
            &mut self.n1,
        );
        match (&layer.moe, &layer.ffn) {
            (Some(moe), _) => self.moe_block_batch(params, moe),
            (None, Some(ffn)) => {
                linear_into(&self.n1, params, &ffn.lin1, &mut self.hid);
                self.hid.map_inplace(|x| x.max(0.0));
                linear_into(&self.hid, params, &ffn.lin2, &mut self.block);
            }
            _ => unreachable!("layer has either moe or ffn"),
        }
        add_into(&self.n1, &self.block, &mut self.res2);
        layer_norm_into(
            &self.res2,
            params.get(layer.norm2.gamma),
            params.get(layer.norm2.beta),
            &mut self.h,
        );
    }

    /// Batched sparse-MoE block over the stacked `self.n1`.
    ///
    /// Gating and routing are per token (batched whole); each expert runs
    /// **once** over its tokens gathered across every window (row-wise, so
    /// per-token results match the per-window run); but the
    /// scatter-then-accumulate into `self.block` replicates the tape **per
    /// window**: within each window's row range, the first expert holding
    /// any of its tokens *copies* its zero-padded scatter and later
    /// experts *add* theirs (including the adds over untouched zero rows),
    /// in ascending expert order. The distinction matters for signed
    /// zeros: `-0.0` copied stays `-0.0`, while `0.0 + -0.0` is `+0.0` —
    /// and which experts are nonempty differs per window, so a whole-batch
    /// copy-then-add would not be bit-safe.
    fn moe_block_batch(&mut self, params: &ParamStore, moe: &crate::moe::MoeLayer) {
        let total = self.n1.rows();
        let d = self.n1.cols();
        let n_exp = moe.experts.len();
        let nb = self.boffsets.len() - 1;
        self.n1.matmul_into(params.get(moe.gate), &mut self.gate);
        softmax_rows_inplace(&mut self.gate);
        if self.assign.len() < n_exp {
            self.assign.resize_with(n_exp, Vec::new);
        }
        for a in &mut self.assign[..n_exp] {
            a.clear();
        }
        for tok in 0..total {
            let row = self.gate.row(tok);
            top_k_into(row, moe.top_k, &mut self.order);
            for &e in &self.order {
                self.assign[e].push(tok);
            }
        }
        self.block.resize(total, d);
        self.binit.clear();
        self.binit.resize(nb, false);
        for (e, expert) in moe.experts.iter().enumerate() {
            if self.assign[e].is_empty() {
                continue;
            }
            // xe = gather(n1, idx) across all windows, ascending rows.
            let idx = &self.assign[e];
            self.xe.resize(idx.len(), d);
            for (r, &tok) in idx.iter().enumerate() {
                self.xe.row_mut(r).copy_from_slice(self.n1.row(tok));
            }
            linear_into(&self.xe, params, &expert.lin1, &mut self.hid);
            self.hid.map_inplace(|x| x.max(0.0));
            linear_into(&self.hid, params, &expert.lin2, &mut self.ye);
            let idx = &self.assign[e];
            for (r, &tok) in idx.iter().enumerate() {
                let w = self.gate[(tok, e)];
                for x in self.ye.row_mut(r).iter_mut() {
                    *x *= w;
                }
            }
            // Walk the ascending token list grouped by window and apply
            // the tape's scatter / copy-or-add within each row range.
            let mut w = 0usize;
            let mut r = 0usize;
            while r < idx.len() {
                while self.boffsets[w + 1] <= idx[r] {
                    w += 1;
                }
                let (r0, r1) = (self.boffsets[w], self.boffsets[w + 1]);
                self.full.resize(r1 - r0, d);
                let mut rr = r;
                while rr < idx.len() && idx[rr] < r1 {
                    self.full
                        .row_mut(idx[rr] - r0)
                        .copy_from_slice(self.ye.row(rr));
                    rr += 1;
                }
                if self.binit[w] {
                    for i in 0..r1 - r0 {
                        for (o, &v) in self.block.row_mut(r0 + i).iter_mut().zip(self.full.row(i)) {
                            *o += v;
                        }
                    }
                } else {
                    for i in 0..r1 - r0 {
                        self.block.row_mut(r0 + i).copy_from_slice(self.full.row(i));
                    }
                    self.binit[w] = true;
                }
                r = rr;
            }
        }
        for (w, done) in self.binit.iter().enumerate() {
            if *done {
                continue;
            }
            // No expert holds any token of this window: tape falls back
            // to x · 0.0 over its rows.
            for i in self.boffsets[w]..self.boffsets[w + 1] {
                for (o, &v) in self.block.row_mut(i).iter_mut().zip(self.n1.row(i)) {
                    *o = v * 0.0;
                }
            }
        }
    }
}

/// `out = x · W + b`, reading the weight and bias live from the store.
/// Matches the taped `Linear::forward` (matmul, then bias broadcast)
/// bit-for-bit — it *is* the same matmul kernel on the same operands.
fn linear_into(x: &Matrix, params: &ParamStore, lin: &Linear, out: &mut Matrix) {
    x.matmul_into(params.get(lin.w), out);
    out.add_row_broadcast_inplace(params.get(lin.b));
}

/// Copy the `[r0, r1) × [lo, hi)` block of `src` into `out` (reshaped in
/// place) — the batched analogue of [`slice_cols_into`] restricted to one
/// window's row range.
fn slice_block_into(src: &Matrix, r0: usize, r1: usize, lo: usize, hi: usize, out: &mut Matrix) {
    out.resize(r1 - r0, hi - lo);
    for r in r0..r1 {
        out.row_mut(r - r0).copy_from_slice(&src.row(r)[lo..hi]);
    }
}

/// Copy columns `[lo, hi)` of `src` into `out` (reshaped in place).
fn slice_cols_into(src: &Matrix, lo: usize, hi: usize, out: &mut Matrix) {
    out.resize(src.rows(), hi - lo);
    for r in 0..src.rows() {
        out.row_mut(r).copy_from_slice(&src.row(r)[lo..hi]);
    }
}

/// `out = a + b` elementwise (reshaped in place).
fn add_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    debug_assert_eq!(a.shape(), b.shape());
    out.resize(a.rows(), a.cols());
    for ((o, &x), &y) in out
        .as_mut_slice()
        .iter_mut()
        .zip(a.as_slice())
        .zip(b.as_slice())
    {
        *o = x + y;
    }
}

/// Numerically-stable row softmax in place — the tape's exact loops.
fn softmax_rows_inplace(m: &mut Matrix) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut s = 0.0;
        for x in row.iter_mut() {
            *x = (*x - mx).exp();
            s += *x;
        }
        for x in row.iter_mut() {
            *x /= s;
        }
    }
}

/// Row-wise LayerNorm into `out` — the tape's exact arithmetic
/// (`eps = 1e-5`, biased variance).
fn layer_norm_into(src: &Matrix, gamma: &Matrix, beta: &Matrix, out: &mut Matrix) {
    let eps = 1e-5;
    out.resize(src.rows(), src.cols());
    for r in 0..src.rows() {
        let row = src.row(r);
        let d = row.len() as f64;
        let mean = row.iter().sum::<f64>() / d;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / d;
        let inv = 1.0 / (var + eps).sqrt();
        for (i, (o, v)) in out.row_mut(r).iter_mut().zip(row).enumerate() {
            *o = gamma.as_slice()[i] * (*v - mean) * inv + beta.as_slice()[i];
        }
    }
}

/// Allocation-free replica of `ns_linalg::vecops::top_k_indices`: fill
/// `order` with the indices of `x` sorted descending by value, ties to
/// the lower index, truncated to `k`. The comparator is total (NaN
/// compares Equal, then falls to the index), so this insertion sort
/// produces the same permutation as the library's stable sort.
fn top_k_into(x: &[f64], k: usize, order: &mut Vec<usize>) {
    order.clear();
    order.extend(0..x.len());
    let cmp = |a: usize, b: usize| {
        x[b].partial_cmp(&x[a])
            .unwrap_or(Ordering::Equal)
            .then(a.cmp(&b))
    };
    for i in 1..order.len() {
        let mut j = i;
        while j > 0 && cmp(order[j - 1], order[j]) == Ordering::Greater {
            order.swap(j - 1, j);
            j -= 1;
        }
    }
    order.truncate(k.min(x.len()));
}

/// f32 twin of [`InferenceSession`] — the opt-in precision-tiered
/// scoring path.
///
/// The structure mirrors the f64 session exactly (same scratch set, same
/// loop orders, same MoE copy-vs-add discipline), with two deliberate
/// differences:
///
/// * **Weights are prebaked.** The f64 session reads [`ParamStore`]
///   weights live; down-converting per forward would dominate the win,
///   so this session converts every store matrix to [`MatrixF32`] once
///   and caches the copies keyed by [`ParamStore::version`] — any
///   mutation (`incremental_update`, refit hot-swap) invalidates the
///   bake and the next forward re-converts.
/// * **Arithmetic runs in f32.** Inputs and positional encodings are
///   down-converted at scratch-fill time (the PE trigonometry itself
///   runs in f64 and rounds once — it is computed per window anyway and
///   accuracy is free). Per-row reconstruction errors are accumulated in
///   f32 and widened to f64 on return so calibration and verdict logic
///   upstream stay in one domain.
///
/// The f32 pipeline is internally deterministic (strict ascending-order
/// reductions through the f32 kernels, thread-count independent), but no
/// bit relationship to the f64 tier is promised — the accuracy delta is
/// measured by `exp_deployment`, and `tests/precision_equivalence.rs`
/// pins a per-layer relative tolerance against the f64 forward.
#[derive(Default)]
pub struct InferenceSessionF32 {
    /// Prebaked f32 copies of every store matrix, indexed by `ParamId`.
    weights: Vec<MatrixF32>,
    /// Store version the bake was taken at; `None` before first use.
    baked_version: Option<u64>,
    x: MatrixF32,
    pe: MatrixF32,
    h: MatrixF32,
    q: MatrixF32,
    k: MatrixF32,
    v: MatrixF32,
    qh: MatrixF32,
    kh: MatrixF32,
    vh: MatrixF32,
    scores: MatrixF32,
    head: MatrixF32,
    cat: MatrixF32,
    attn: MatrixF32,
    res1: MatrixF32,
    n1: MatrixF32,
    gate: MatrixF32,
    xe: MatrixF32,
    hid: MatrixF32,
    ye: MatrixF32,
    full: MatrixF32,
    block: MatrixF32,
    res2: MatrixF32,
    out: MatrixF32,
    err: Vec<f64>,
    assign: Vec<Vec<usize>>,
    order: Vec<usize>,
    boffsets: Vec<usize>,
    binit: Vec<bool>,
    pe_div: Vec<f64>,
}

impl InferenceSessionF32 {
    pub fn new() -> Self {
        Self::default()
    }

    /// Refresh the prebaked f32 weight copies if the store has mutated
    /// (or was never baked). Reuses allocations on re-bake.
    fn bake(&mut self, params: &ParamStore) {
        if self.baked_version == Some(params.version()) && self.weights.len() == params.len() {
            return;
        }
        for id in 0..params.len() {
            if id < self.weights.len() {
                self.weights[id].copy_from_matrix(params.get(id));
            } else {
                self.weights.push(MatrixF32::from_matrix(params.get(id)));
            }
        }
        self.weights.truncate(params.len());
        self.baked_version = Some(params.version());
    }

    /// f32 forward of a `T × input_dim` window with a precomputed
    /// positional-encoding table (both down-converted at fill). Returns
    /// the reconstruction, borrowed from the session's scratch.
    pub fn forward(
        &mut self,
        params: &ParamStore,
        model: &ReconstructionTransformer,
        x: &Matrix,
        pe: &Matrix,
    ) -> &MatrixF32 {
        self.bake(params);
        self.x.copy_from_matrix(x);
        self.pe.copy_from_matrix(pe);
        self.forward_scratch(model);
        &self.out
    }

    /// f32 twin of [`InferenceSession::score_window`]: per-row weighted
    /// reconstruction errors of one window, accumulated in f32 and
    /// widened to f64 on return.
    #[allow(clippy::too_many_arguments)]
    pub fn score_window(
        &mut self,
        params: &ParamStore,
        model: &ReconstructionTransformer,
        data: &Matrix,
        start: usize,
        end: usize,
        pos_of: impl Fn(usize) -> f64,
        weights: &[f64],
    ) -> &[f64] {
        self.bake(params);
        let t = end - start;
        let m = data.cols();
        self.x.resize(t, m);
        for r in 0..t {
            for (slot, &v) in self.x.row_mut(r).iter_mut().zip(data.row(start + r)) {
                *slot = v as f32;
            }
        }
        let d_model = model.cfg.d_model;
        self.fill_pe_div(d_model);
        self.pe.resize(t, d_model);
        for r in 0..t {
            let p = pos_of(start + r);
            for (i, (slot, &div)) in self.pe.row_mut(r).iter_mut().zip(&self.pe_div).enumerate() {
                // Trig in f64 (same expression as the f64 tier), rounded
                // once at the store.
                *slot = if i % 2 == 0 {
                    (p / div).sin() as f32
                } else {
                    (p / div).cos() as f32
                };
            }
        }
        self.forward_scratch(model);
        self.err.clear();
        for r in 0..t {
            let e = self
                .x
                .row(r)
                .iter()
                .zip(self.out.row(r))
                .zip(weights)
                .map(|((a, b), w)| (*w as f32) * (a - b) * (a - b))
                .sum::<f32>()
                / m.max(1) as f32;
            self.err.push(e as f64);
        }
        &self.err
    }

    /// f32 twin of [`InferenceSession::forward_batch`]: stacked batched
    /// forward, one f32 matmul per linear layer across all windows.
    pub fn forward_batch(
        &mut self,
        params: &ParamStore,
        model: &ReconstructionTransformer,
        windows: &[(&Matrix, &Matrix)],
    ) -> (&MatrixF32, &[usize]) {
        self.bake(params);
        let m = windows.first().map(|(x, _)| x.cols()).unwrap_or(0);
        let d_model = model.cfg.d_model;
        self.boffsets.clear();
        self.boffsets.push(0);
        let mut total = 0usize;
        for (x, pe) in windows {
            assert_eq!(x.cols(), m, "all windows must share input width");
            assert_eq!(pe.rows(), x.rows(), "pe must have one row per input row");
            assert_eq!(pe.cols(), d_model, "pe width must equal d_model");
            total += x.rows();
            self.boffsets.push(total);
        }
        if windows.is_empty() {
            self.out.resize(0, 0);
            return (&self.out, &self.boffsets);
        }
        self.x.resize(total, m);
        self.pe.resize(total, d_model);
        for (b, (x, pe)) in windows.iter().enumerate() {
            let r0 = self.boffsets[b];
            for r in 0..x.rows() {
                for (slot, &v) in self.x.row_mut(r0 + r).iter_mut().zip(x.row(r)) {
                    *slot = v as f32;
                }
                for (slot, &v) in self.pe.row_mut(r0 + r).iter_mut().zip(pe.row(r)) {
                    *slot = v as f32;
                }
            }
        }
        self.forward_scratch_batch(model);
        (&self.out, &self.boffsets)
    }

    /// f32 twin of [`InferenceSession::score_windows_batch`]: same
    /// row-budgeted sub-batching, errors in f32 widened to f64.
    pub fn score_windows_batch(
        &mut self,
        params: &ParamStore,
        model: &ReconstructionTransformer,
        specs: &[WindowSpec<'_>],
    ) -> &[f64] {
        self.bake(params);
        self.err.clear();
        if specs.is_empty() {
            self.boffsets.clear();
            self.boffsets.push(0);
            return &self.err;
        }
        let d_model = model.cfg.d_model;
        self.fill_pe_div(d_model);
        let m = specs[0].data.cols();
        let mut i = 0;
        while i < specs.len() {
            let mut rows = specs[i].end - specs[i].start;
            let mut j = i + 1;
            while j < specs.len() {
                let r = specs[j].end - specs[j].start;
                if rows + r > BATCH_ROW_BUDGET {
                    break;
                }
                rows += r;
                j += 1;
            }
            self.score_windows_chunk(model, &specs[i..j], m);
            i = j;
        }
        &self.err
    }

    fn fill_pe_div(&mut self, d_model: usize) {
        if self.pe_div.len() != d_model {
            self.pe_div.clear();
            self.pe_div.extend(
                (0..d_model).map(|i| (10000.0_f64).powf((2 * (i / 2)) as f64 / d_model as f64)),
            );
        }
    }

    fn score_windows_chunk(
        &mut self,
        model: &ReconstructionTransformer,
        specs: &[WindowSpec<'_>],
        m: usize,
    ) {
        let d_model = model.cfg.d_model;
        self.boffsets.clear();
        self.boffsets.push(0);
        let mut total = 0usize;
        for s in specs {
            assert_eq!(s.data.cols(), m, "all windows must share input width");
            total += s.end - s.start;
            self.boffsets.push(total);
        }
        self.x.resize(total, m);
        self.pe.resize(total, d_model);
        for (b, s) in specs.iter().enumerate() {
            let r0 = self.boffsets[b];
            for r in 0..s.end - s.start {
                for (slot, &v) in self
                    .x
                    .row_mut(r0 + r)
                    .iter_mut()
                    .zip(s.data.row(s.start + r))
                {
                    *slot = v as f32;
                }
                let p = (s.pos_of)(s.start + r);
                for (i, (slot, &div)) in self
                    .pe
                    .row_mut(r0 + r)
                    .iter_mut()
                    .zip(&self.pe_div)
                    .enumerate()
                {
                    *slot = if i % 2 == 0 {
                        (p / div).sin() as f32
                    } else {
                        (p / div).cos() as f32
                    };
                }
            }
        }
        self.forward_scratch_batch(model);
        for (b, s) in specs.iter().enumerate() {
            let r0 = self.boffsets[b];
            for r in 0..s.end - s.start {
                let e = self
                    .x
                    .row(r0 + r)
                    .iter()
                    .zip(self.out.row(r0 + r))
                    .zip(s.weights)
                    .map(|((a, o), w)| (*w as f32) * (a - o) * (a - o))
                    .sum::<f32>()
                    / m.max(1) as f32;
                self.err.push(e as f64);
            }
        }
    }

    /// The f32 forward pass proper, reading `self.x` / `self.pe` and the
    /// prebaked `self.weights`, leaving the reconstruction in `self.out`.
    fn forward_scratch(&mut self, model: &ReconstructionTransformer) {
        linear_into_f32(&self.x, &self.weights, &model.embed, &mut self.h);
        self.h.add_assign(&self.pe);
        for layer in &model.layers {
            self.encoder_layer(layer);
        }
        linear_into_f32(&self.h, &self.weights, &model.decoder, &mut self.out);
    }

    /// One encoder layer over the `self.h` carrier — the f64 session's
    /// exact structure with f32 scratch and prebaked weights.
    fn encoder_layer(&mut self, layer: &EncoderLayer) {
        let t = self.h.rows();
        let mha = &layer.attn;
        let d_model = mha.d_model;
        let dh = d_model / mha.n_heads;
        let scale = (1.0 / (dh as f64).sqrt()) as f32;
        linear_into_f32(&self.h, &self.weights, &mha.wq, &mut self.q);
        linear_into_f32(&self.h, &self.weights, &mha.wk, &mut self.k);
        linear_into_f32(&self.h, &self.weights, &mha.wv, &mut self.v);
        self.cat.resize(t, d_model);
        for hd in 0..mha.n_heads {
            let lo = hd * dh;
            let hi = lo + dh;
            slice_cols_into_f32(&self.q, lo, hi, &mut self.qh);
            slice_cols_into_f32(&self.k, lo, hi, &mut self.kh);
            slice_cols_into_f32(&self.v, lo, hi, &mut self.vh);
            self.qh.matmul_pre_t_into(&self.kh, &mut self.scores);
            self.scores.map_inplace(|x| x * scale);
            softmax_rows_inplace_f32(&mut self.scores);
            self.scores.matmul_into(&self.vh, &mut self.head);
            for r in 0..t {
                self.cat.row_mut(r)[lo..hi].copy_from_slice(self.head.row(r));
            }
        }
        linear_into_f32(&self.cat, &self.weights, &mha.wo, &mut self.attn);
        add_into_f32(&self.h, &self.attn, &mut self.res1);
        layer_norm_into_f32(
            &self.res1,
            &self.weights[layer.norm1.gamma],
            &self.weights[layer.norm1.beta],
            &mut self.n1,
        );
        match (&layer.moe, &layer.ffn) {
            (Some(moe), _) => self.moe_block(moe),
            (None, Some(ffn)) => {
                linear_into_f32(&self.n1, &self.weights, &ffn.lin1, &mut self.hid);
                self.hid.map_inplace(|x| x.max(0.0));
                linear_into_f32(&self.hid, &self.weights, &ffn.lin2, &mut self.block);
            }
            _ => unreachable!("layer has either moe or ffn"),
        }
        add_into_f32(&self.n1, &self.block, &mut self.res2);
        layer_norm_into_f32(
            &self.res2,
            &self.weights[layer.norm2.gamma],
            &self.weights[layer.norm2.beta],
            &mut self.h,
        );
    }

    /// Sparse-MoE block over `self.n1` into `self.block` — same routing
    /// tie-breaking and scatter/copy-or-add sequence as the f64 session,
    /// with gate probabilities computed in f32.
    fn moe_block(&mut self, moe: &crate::moe::MoeLayer) {
        let t = self.n1.rows();
        let d = self.n1.cols();
        let n_exp = moe.experts.len();
        self.n1.matmul_into(&self.weights[moe.gate], &mut self.gate);
        softmax_rows_inplace_f32(&mut self.gate);
        if self.assign.len() < n_exp {
            self.assign.resize_with(n_exp, Vec::new);
        }
        for a in &mut self.assign[..n_exp] {
            a.clear();
        }
        for tok in 0..t {
            let row = self.gate.row(tok);
            top_k_into_f32(row, moe.top_k, &mut self.order);
            for &e in &self.order {
                self.assign[e].push(tok);
            }
        }
        let mut init = false;
        for (e, expert) in moe.experts.iter().enumerate() {
            let idx = &self.assign[e];
            if idx.is_empty() {
                continue;
            }
            self.xe.resize(idx.len(), d);
            for (r, &tok) in idx.iter().enumerate() {
                self.xe.row_mut(r).copy_from_slice(self.n1.row(tok));
            }
            linear_into_f32(&self.xe, &self.weights, &expert.lin1, &mut self.hid);
            self.hid.map_inplace(|x| x.max(0.0));
            linear_into_f32(&self.hid, &self.weights, &expert.lin2, &mut self.ye);
            for (r, &tok) in idx.iter().enumerate() {
                let w = self.gate[(tok, e)];
                for x in self.ye.row_mut(r).iter_mut() {
                    *x *= w;
                }
            }
            self.full.resize(t, d);
            for (r, &tok) in idx.iter().enumerate() {
                self.full.row_mut(tok).copy_from_slice(self.ye.row(r));
            }
            if init {
                self.block.add_assign(&self.full);
            } else {
                self.block.resize(t, d);
                self.block
                    .as_mut_slice()
                    .copy_from_slice(self.full.as_slice());
                init = true;
            }
        }
        if !init {
            self.block.resize(t, d);
            for (o, &v) in self.block.as_mut_slice().iter_mut().zip(self.n1.as_slice()) {
                *o = v * 0.0;
            }
        }
    }

    /// Batched f32 forward pass over the stacked `self.x` / `self.pe`.
    fn forward_scratch_batch(&mut self, model: &ReconstructionTransformer) {
        linear_into_f32(&self.x, &self.weights, &model.embed, &mut self.h);
        self.h.add_assign(&self.pe);
        for layer in &model.layers {
            self.encoder_layer_batch(layer);
        }
        linear_into_f32(&self.h, &self.weights, &model.decoder, &mut self.out);
    }

    /// One encoder layer over the stacked carrier — batched linears,
    /// per-(window, head) attention, as in the f64 session.
    fn encoder_layer_batch(&mut self, layer: &EncoderLayer) {
        let total = self.h.rows();
        let mha = &layer.attn;
        let d_model = mha.d_model;
        let dh = d_model / mha.n_heads;
        let scale = (1.0 / (dh as f64).sqrt()) as f32;
        linear_into_f32(&self.h, &self.weights, &mha.wq, &mut self.q);
        linear_into_f32(&self.h, &self.weights, &mha.wk, &mut self.k);
        linear_into_f32(&self.h, &self.weights, &mha.wv, &mut self.v);
        self.cat.resize(total, d_model);
        for b in 0..self.boffsets.len() - 1 {
            let (r0, r1) = (self.boffsets[b], self.boffsets[b + 1]);
            for hd in 0..mha.n_heads {
                let lo = hd * dh;
                let hi = lo + dh;
                slice_block_into_f32(&self.q, r0, r1, lo, hi, &mut self.qh);
                slice_block_into_f32(&self.k, r0, r1, lo, hi, &mut self.kh);
                slice_block_into_f32(&self.v, r0, r1, lo, hi, &mut self.vh);
                self.qh.matmul_pre_t_into(&self.kh, &mut self.scores);
                self.scores.map_inplace(|x| x * scale);
                softmax_rows_inplace_f32(&mut self.scores);
                self.scores.matmul_into(&self.vh, &mut self.head);
                for r in r0..r1 {
                    self.cat.row_mut(r)[lo..hi].copy_from_slice(self.head.row(r - r0));
                }
            }
        }
        linear_into_f32(&self.cat, &self.weights, &mha.wo, &mut self.attn);
        add_into_f32(&self.h, &self.attn, &mut self.res1);
        layer_norm_into_f32(
            &self.res1,
            &self.weights[layer.norm1.gamma],
            &self.weights[layer.norm1.beta],
            &mut self.n1,
        );
        match (&layer.moe, &layer.ffn) {
            (Some(moe), _) => self.moe_block_batch(moe),
            (None, Some(ffn)) => {
                linear_into_f32(&self.n1, &self.weights, &ffn.lin1, &mut self.hid);
                self.hid.map_inplace(|x| x.max(0.0));
                linear_into_f32(&self.hid, &self.weights, &ffn.lin2, &mut self.block);
            }
            _ => unreachable!("layer has either moe or ffn"),
        }
        add_into_f32(&self.n1, &self.block, &mut self.res2);
        layer_norm_into_f32(
            &self.res2,
            &self.weights[layer.norm2.gamma],
            &self.weights[layer.norm2.beta],
            &mut self.h,
        );
    }

    /// Batched sparse-MoE block — per-window copy-or-add scatter, exactly
    /// the f64 session's signed-zero-safe sequence in f32.
    fn moe_block_batch(&mut self, moe: &crate::moe::MoeLayer) {
        let total = self.n1.rows();
        let d = self.n1.cols();
        let n_exp = moe.experts.len();
        let nb = self.boffsets.len() - 1;
        self.n1.matmul_into(&self.weights[moe.gate], &mut self.gate);
        softmax_rows_inplace_f32(&mut self.gate);
        if self.assign.len() < n_exp {
            self.assign.resize_with(n_exp, Vec::new);
        }
        for a in &mut self.assign[..n_exp] {
            a.clear();
        }
        for tok in 0..total {
            let row = self.gate.row(tok);
            top_k_into_f32(row, moe.top_k, &mut self.order);
            for &e in &self.order {
                self.assign[e].push(tok);
            }
        }
        self.block.resize(total, d);
        self.binit.clear();
        self.binit.resize(nb, false);
        for (e, expert) in moe.experts.iter().enumerate() {
            if self.assign[e].is_empty() {
                continue;
            }
            let idx = &self.assign[e];
            self.xe.resize(idx.len(), d);
            for (r, &tok) in idx.iter().enumerate() {
                self.xe.row_mut(r).copy_from_slice(self.n1.row(tok));
            }
            linear_into_f32(&self.xe, &self.weights, &expert.lin1, &mut self.hid);
            self.hid.map_inplace(|x| x.max(0.0));
            linear_into_f32(&self.hid, &self.weights, &expert.lin2, &mut self.ye);
            let idx = &self.assign[e];
            for (r, &tok) in idx.iter().enumerate() {
                let w = self.gate[(tok, e)];
                for x in self.ye.row_mut(r).iter_mut() {
                    *x *= w;
                }
            }
            let mut w = 0usize;
            let mut r = 0usize;
            while r < idx.len() {
                while self.boffsets[w + 1] <= idx[r] {
                    w += 1;
                }
                let (r0, r1) = (self.boffsets[w], self.boffsets[w + 1]);
                self.full.resize(r1 - r0, d);
                let mut rr = r;
                while rr < idx.len() && idx[rr] < r1 {
                    self.full
                        .row_mut(idx[rr] - r0)
                        .copy_from_slice(self.ye.row(rr));
                    rr += 1;
                }
                if self.binit[w] {
                    for i in 0..r1 - r0 {
                        for (o, &v) in self.block.row_mut(r0 + i).iter_mut().zip(self.full.row(i)) {
                            *o += v;
                        }
                    }
                } else {
                    for i in 0..r1 - r0 {
                        self.block.row_mut(r0 + i).copy_from_slice(self.full.row(i));
                    }
                    self.binit[w] = true;
                }
                r = rr;
            }
        }
        for (w, done) in self.binit.iter().enumerate() {
            if *done {
                continue;
            }
            for i in self.boffsets[w]..self.boffsets[w + 1] {
                for (o, &v) in self.block.row_mut(i).iter_mut().zip(self.n1.row(i)) {
                    *o = v * 0.0;
                }
            }
        }
    }
}

/// `out = x · W + b` over the prebaked f32 weight copies.
fn linear_into_f32(x: &MatrixF32, weights: &[MatrixF32], lin: &Linear, out: &mut MatrixF32) {
    x.matmul_into(&weights[lin.w], out);
    out.add_row_broadcast_inplace(&weights[lin.b]);
}

/// f32 twin of [`slice_block_into`].
fn slice_block_into_f32(
    src: &MatrixF32,
    r0: usize,
    r1: usize,
    lo: usize,
    hi: usize,
    out: &mut MatrixF32,
) {
    out.resize(r1 - r0, hi - lo);
    for r in r0..r1 {
        out.row_mut(r - r0).copy_from_slice(&src.row(r)[lo..hi]);
    }
}

/// f32 twin of [`slice_cols_into`].
fn slice_cols_into_f32(src: &MatrixF32, lo: usize, hi: usize, out: &mut MatrixF32) {
    out.resize(src.rows(), hi - lo);
    for r in 0..src.rows() {
        out.row_mut(r).copy_from_slice(&src.row(r)[lo..hi]);
    }
}

/// f32 twin of [`add_into`].
fn add_into_f32(a: &MatrixF32, b: &MatrixF32, out: &mut MatrixF32) {
    debug_assert_eq!(a.shape(), b.shape());
    out.resize(a.rows(), a.cols());
    for ((o, &x), &y) in out
        .as_mut_slice()
        .iter_mut()
        .zip(a.as_slice())
        .zip(b.as_slice())
    {
        *o = x + y;
    }
}

/// f32 twin of [`softmax_rows_inplace`].
fn softmax_rows_inplace_f32(m: &mut MatrixF32) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let mx = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut s = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - mx).exp();
            s += *x;
        }
        for x in row.iter_mut() {
            *x /= s;
        }
    }
}

/// f32 twin of [`layer_norm_into`] (`eps = 1e-5`, biased variance).
fn layer_norm_into_f32(src: &MatrixF32, gamma: &MatrixF32, beta: &MatrixF32, out: &mut MatrixF32) {
    let eps = 1e-5f32;
    out.resize(src.rows(), src.cols());
    for r in 0..src.rows() {
        let row = src.row(r);
        let d = row.len() as f32;
        let mean = row.iter().sum::<f32>() / d;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d;
        let inv = 1.0 / (var + eps).sqrt();
        for (i, (o, v)) in out.row_mut(r).iter_mut().zip(row).enumerate() {
            *o = gamma.as_slice()[i] * (*v - mean) * inv + beta.as_slice()[i];
        }
    }
}

/// f32 twin of [`top_k_into`]: same total comparator (descending value,
/// NaN Equal, ties to the lower index), same insertion sort.
fn top_k_into_f32(x: &[f32], k: usize, order: &mut Vec<usize>) {
    order.clear();
    order.extend(0..x.len());
    let cmp = |a: usize, b: usize| {
        x[b].partial_cmp(&x[a])
            .unwrap_or(Ordering::Equal)
            .then(a.cmp(&b))
    };
    for i in 1..order.len() {
        let mut j = i;
        while j > 0 && cmp(order[j - 1], order[j]) == Ordering::Greater {
            order.swap(j - 1, j);
            j -= 1;
        }
    }
    order.truncate(k.min(x.len()));
}

/// Thread-safe pool of [`InferenceSession`]s, used by scoring call sites
/// that fan windows out over rayon workers: each worker pops a warm
/// session (or starts a cold one) and pushes it back when done.
#[derive(Default)]
pub struct SessionPool {
    pool: Mutex<Vec<InferenceSession>>,
}

/// Upper bound on pooled sessions — more than any sane rayon pool width;
/// beyond it released sessions are simply dropped.
const POOL_CAP: usize = 64;

impl SessionPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pop a warm session, or create a cold one if the pool is empty.
    pub fn acquire(&self) -> InferenceSession {
        self.pool
            .lock()
            .map(|mut p| p.pop())
            .unwrap_or(None)
            .unwrap_or_default()
    }

    /// Return a session for reuse.
    pub fn release(&self, session: InferenceSession) {
        if let Ok(mut p) = self.pool.lock() {
            if p.len() < POOL_CAP {
                p.push(session);
            }
        }
    }
}

/// Serialized as `Null`: warm sessions are pure caches, rebuilt on demand.
impl serde::Serialize for SessionPool {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

/// Deserializes from anything (including a missing field) to an empty
/// pool — sessions re-warm their scratch lazily on first use.
impl serde::Deserialize for SessionPool {
    fn from_value(_v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self::default())
    }
}

/// Cloning a model must not share (or copy) live scratch: a clone starts
/// with a cold, empty pool.
impl Clone for SessionPool {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl std::fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.pool.lock().map(|p| p.len()).unwrap_or(0);
        write!(f, "SessionPool({n} warm)")
    }
}

/// Thread-safe pool of [`InferenceSessionF32`]s — the f32 tier's twin of
/// [`SessionPool`]. Pooled sessions keep their prebaked weight copies
/// warm across windows; the version check in
/// [`InferenceSessionF32::forward`] makes a stale bake self-heal, so
/// pooling never serves stale weights.
#[derive(Default)]
pub struct SessionPoolF32 {
    pool: Mutex<Vec<InferenceSessionF32>>,
}

impl SessionPoolF32 {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pop a warm session, or create a cold one if the pool is empty.
    pub fn acquire(&self) -> InferenceSessionF32 {
        self.pool
            .lock()
            .map(|mut p| p.pop())
            .unwrap_or(None)
            .unwrap_or_default()
    }

    /// Return a session for reuse.
    pub fn release(&self, session: InferenceSessionF32) {
        if let Ok(mut p) = self.pool.lock() {
            if p.len() < POOL_CAP {
                p.push(session);
            }
        }
    }
}

/// Serialized as `Null`: warm sessions are pure caches, rebuilt on demand.
impl serde::Serialize for SessionPoolF32 {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

/// Deserializes from anything (including a missing field) to an empty
/// pool — sessions re-bake their weights lazily on first use.
impl serde::Deserialize for SessionPoolF32 {
    fn from_value(_v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self::default())
    }
}

/// Cloning a model must not share (or copy) live scratch: a clone starts
/// with a cold, empty pool.
impl Clone for SessionPoolF32 {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl std::fmt::Debug for SessionPoolF32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.pool.lock().map(|p| p.len()).unwrap_or(0);
        write!(f, "SessionPoolF32({n} warm)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::sinusoidal_pe;
    use crate::tape::Graph;
    use crate::transformer::{BlockKind, TransformerConfig};
    use ns_linalg::vecops::top_k_indices;

    fn cfg(block: BlockKind) -> TransformerConfig {
        TransformerConfig {
            input_dim: 4,
            d_model: 8,
            n_heads: 2,
            n_layers: 2,
            hidden: 16,
            block,
            aux_weight: 0.01,
        }
    }

    fn window(t: usize, m: usize, phase: f64) -> Matrix {
        Matrix::from_fn(t, m, |r, c| {
            ((r as f64 * 0.4 + c as f64 + phase) * 0.7).sin()
        })
    }

    #[test]
    fn top_k_into_matches_library() {
        let cases: Vec<Vec<f64>> = vec![
            vec![0.2, 0.5, 0.3],
            vec![1.0, 1.0, 1.0, 1.0],
            vec![-0.5, 0.0, 0.0, -0.5, 2.0],
            vec![3.0],
            vec![],
        ];
        let mut order = Vec::new();
        for x in cases {
            for k in 0..=x.len() + 1 {
                top_k_into(&x, k, &mut order);
                assert_eq!(order, top_k_indices(&x, k), "x={x:?} k={k}");
            }
        }
    }

    #[test]
    fn forward_bit_identical_to_tape_dense_and_moe() {
        for (seed, block) in [
            (1u64, BlockKind::Dense),
            (
                2,
                BlockKind::Moe {
                    n_experts: 3,
                    top_k: 1,
                },
            ),
            (
                3,
                BlockKind::Moe {
                    n_experts: 2,
                    top_k: 2,
                },
            ),
        ] {
            let mut params = ParamStore::new(seed);
            let model = ReconstructionTransformer::new(&mut params, cfg(block));
            let x = window(10, 4, seed as f64);
            let pe = sinusoidal_pe(10, 8, 0);
            let taped = {
                let mut g = Graph::new(&params);
                let xn = g.input(x.clone());
                let pn = g.input(pe.clone());
                let (recon, _) = model.forward(&mut g, xn, pn);
                g.value(recon).clone()
            };
            let mut sess = InferenceSession::new();
            for _ in 0..2 {
                // Twice: cold then warm scratch must agree.
                let fast = sess.forward(&params, &model, &x, &pe);
                assert_eq!(fast.shape(), taped.shape());
                for (a, b) in fast.as_slice().iter().zip(taped.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn f32_forward_tracks_f64_within_tolerance() {
        for (seed, block) in [
            (1u64, BlockKind::Dense),
            (
                2,
                BlockKind::Moe {
                    n_experts: 3,
                    top_k: 1,
                },
            ),
        ] {
            let mut params = ParamStore::new(seed);
            let model = ReconstructionTransformer::new(&mut params, cfg(block));
            let x = window(10, 4, seed as f64);
            let pe = sinusoidal_pe(10, 8, 0);
            let mut s64 = InferenceSession::new();
            let want = s64.forward(&params, &model, &x, &pe).clone();
            let mut s32 = InferenceSessionF32::new();
            let got = s32.forward(&params, &model, &x, &pe);
            assert_eq!(got.shape(), want.shape());
            for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                let rel = (*a as f64 - b).abs() / b.abs().max(1.0);
                assert!(rel < 1e-3, "f32 forward drifted: {a} vs {b} (seed {seed})");
            }
        }
    }

    #[test]
    fn f32_batch_bit_identical_to_f32_per_window() {
        // The f32 tier has its own internal determinism contract: a
        // batched forward must reproduce per-window f32 forwards exactly,
        // the same invariant the f64 tier pins across its two paths.
        let mut params = ParamStore::new(4);
        let model = ReconstructionTransformer::new(
            &mut params,
            cfg(BlockKind::Moe {
                n_experts: 3,
                top_k: 2,
            }),
        );
        let windows: Vec<(Matrix, Matrix)> = (0..3)
            .map(|i| {
                let t = 6 + i;
                (window(t, 4, i as f64), sinusoidal_pe(t, 8, 0))
            })
            .collect();
        let refs: Vec<(&Matrix, &Matrix)> = windows.iter().map(|(x, p)| (x, p)).collect();
        let mut batch = InferenceSessionF32::new();
        let (stacked, offs) = batch.forward_batch(&params, &model, &refs);
        let stacked = stacked.clone();
        let offs = offs.to_vec();
        let mut single = InferenceSessionF32::new();
        for (b, (x, pe)) in windows.iter().enumerate() {
            let want = single.forward(&params, &model, x, pe);
            for r in 0..x.rows() {
                for (g, w) in stacked.row(offs[b] + r).iter().zip(want.row(r)) {
                    assert_eq!(g.to_bits(), w.to_bits(), "window {b} row {r}");
                }
            }
        }
    }

    #[test]
    fn f32_bake_invalidated_by_param_mutation() {
        let mut params = ParamStore::new(9);
        let model = ReconstructionTransformer::new(&mut params, cfg(BlockKind::Dense));
        let x = window(6, 4, 0.0);
        let pe = sinusoidal_pe(6, 8, 0);
        let mut sess = InferenceSessionF32::new();
        let before = sess.forward(&params, &model, &x, &pe).clone();
        params.get_mut(model.decoder.w).map_inplace(|v| v + 0.25);
        let after = sess.forward(&params, &model, &x, &pe).clone();
        assert_ne!(before, after, "f32 session served a stale weight bake");
    }

    #[test]
    fn param_mutation_visible_on_next_forward() {
        let mut params = ParamStore::new(9);
        let model = ReconstructionTransformer::new(&mut params, cfg(BlockKind::Dense));
        let x = window(6, 4, 0.0);
        let pe = sinusoidal_pe(6, 8, 0);
        let mut sess = InferenceSession::new();
        let before = sess.forward(&params, &model, &x, &pe).clone();
        // Nudge one weight through the only mutation path.
        params.get_mut(model.decoder.w).map_inplace(|v| v + 0.25);
        let after = sess.forward(&params, &model, &x, &pe).clone();
        assert_ne!(before, after, "session ignored a param mutation");
        let taped = {
            let mut g = Graph::new(&params);
            let xn = g.input(x.clone());
            let pn = g.input(pe.clone());
            let (recon, _) = model.forward(&mut g, xn, pn);
            g.value(recon).clone()
        };
        assert_eq!(after, taped);
    }
}
