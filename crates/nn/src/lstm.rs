//! LSTM cell and a sequence autoencoder built from it — the substrate for
//! the RUAD baseline (per-node LSTM anomaly detection).

use crate::layers::Linear;
use crate::params::ParamStore;
use crate::tape::{Graph, NodeId};
use ns_linalg::matrix::Matrix;

/// A single LSTM cell. Gates are computed from `[x, h]` concatenation via
/// four linear maps.
#[derive(Clone, Debug)]
pub struct LstmCell {
    pub wf: Linear,
    pub wi: Linear,
    pub wo: Linear,
    pub wc: Linear,
    pub input_dim: usize,
    pub hidden_dim: usize,
}

impl LstmCell {
    pub fn new(params: &mut ParamStore, name: &str, input_dim: usize, hidden_dim: usize) -> Self {
        let cat = input_dim + hidden_dim;
        Self {
            wf: Linear::new(params, &format!("{name}.wf"), cat, hidden_dim),
            wi: Linear::new(params, &format!("{name}.wi"), cat, hidden_dim),
            wo: Linear::new(params, &format!("{name}.wo"), cat, hidden_dim),
            wc: Linear::new(params, &format!("{name}.wc"), cat, hidden_dim),
            input_dim,
            hidden_dim,
        }
    }

    /// One step: `x` is `1 × input_dim`, state is `(h, c)` each
    /// `1 × hidden_dim`. Returns the new `(h, c)`.
    pub fn step(&self, g: &mut Graph<'_>, x: NodeId, h: NodeId, c: NodeId) -> (NodeId, NodeId) {
        let xh = g.concat_cols(&[x, h]);
        let f_lin = self.wf.forward(g, xh);
        let f = g.sigmoid(f_lin);
        let i_lin = self.wi.forward(g, xh);
        let i = g.sigmoid(i_lin);
        let o_lin = self.wo.forward(g, xh);
        let o = g.sigmoid(o_lin);
        let c_lin = self.wc.forward(g, xh);
        let chat = g.tanh(c_lin);
        let fc = g.mul(f, c);
        let ic = g.mul(i, chat);
        let c_new = g.add(fc, ic);
        let tc = g.tanh(c_new);
        let h_new = g.mul(o, tc);
        (h_new, c_new)
    }

    /// Zero initial state nodes.
    pub fn zero_state(&self, g: &mut Graph<'_>) -> (NodeId, NodeId) {
        let h = g.input(Matrix::zeros(1, self.hidden_dim));
        let c = g.input(Matrix::zeros(1, self.hidden_dim));
        (h, c)
    }
}

/// LSTM autoencoder: encode a `T × m` window into the final hidden state,
/// then decode it back to `T × m` reconstructions (RUAD-style).
#[derive(Clone, Debug)]
pub struct LstmAutoencoder {
    pub encoder: LstmCell,
    pub decoder: LstmCell,
    pub readout: Linear,
    pub input_dim: usize,
    pub hidden_dim: usize,
}

impl LstmAutoencoder {
    pub fn new(params: &mut ParamStore, name: &str, input_dim: usize, hidden_dim: usize) -> Self {
        Self {
            encoder: LstmCell::new(params, &format!("{name}.enc"), input_dim, hidden_dim),
            decoder: LstmCell::new(params, &format!("{name}.dec"), input_dim, hidden_dim),
            readout: Linear::new(params, &format!("{name}.read"), hidden_dim, input_dim),
            input_dim,
            hidden_dim,
        }
    }

    /// Reconstruct a `T × input_dim` window; returns the reconstruction
    /// node (`T × input_dim`).
    pub fn reconstruct(&self, g: &mut Graph<'_>, window: &Matrix) -> NodeId {
        let t_len = window.rows();
        assert!(t_len > 0, "empty window");
        // Encode.
        let (mut h, mut c) = self.encoder.zero_state(g);
        let mut step_inputs = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let x = g.input(Matrix::row_vector(window.row(t)));
            step_inputs.push(x);
            let (nh, nc) = self.encoder.step(g, x, h, c);
            h = nh;
            c = nc;
        }
        // Decode: feed back the previous *reconstruction* (teacher-free),
        // starting from the last input frame, carrying the encoder state.
        let mut outputs = Vec::with_capacity(t_len);
        let mut prev = step_inputs[t_len - 1];
        let (mut dh, mut dc) = (h, c);
        for _ in 0..t_len {
            let (nh, nc) = self.decoder.step(g, prev, dh, dc);
            dh = nh;
            dc = nc;
            let y = self.readout.forward(g, dh);
            outputs.push(y);
            prev = y;
        }
        // Decoder emits the window back in reverse order (standard
        // seq2seq AE trick): un-reverse while stacking.
        outputs.reverse();
        // Stack rows: scatter each 1×m row into a T×m matrix.
        let mut total: Option<NodeId> = None;
        for (t, &row) in outputs.iter().enumerate() {
            let placed = g.scatter_rows(row, &[t], t_len);
            total = Some(match total {
                Some(acc) => g.add(acc, placed),
                None => placed,
            });
        }
        total.expect("at least one timestep")
    }

    /// MSE reconstruction loss for a window.
    pub fn loss(&self, g: &mut Graph<'_>, window: &Matrix) -> NodeId {
        let recon = self.reconstruct(g, window);
        let target = g.input(window.clone());
        g.mse(recon, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    #[test]
    fn cell_step_shapes_and_bounds() {
        let mut params = ParamStore::new(3);
        let cell = LstmCell::new(&mut params, "c", 4, 6);
        let mut g = Graph::new(&params);
        let x = g.input(Matrix::filled(1, 4, 0.5));
        let (h0, c0) = cell.zero_state(&mut g);
        let (h1, c1) = cell.step(&mut g, x, h0, c0);
        assert_eq!(g.value(h1).shape(), (1, 6));
        assert_eq!(g.value(c1).shape(), (1, 6));
        // h = o ⊙ tanh(c) is bounded by (-1, 1).
        assert!(g.value(h1).as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn state_evolves_across_steps() {
        let mut params = ParamStore::new(4);
        let cell = LstmCell::new(&mut params, "c", 2, 4);
        let mut g = Graph::new(&params);
        let (mut h, mut c) = cell.zero_state(&mut g);
        let mut prev_h = g.value(h).clone();
        for t in 0..3 {
            let x = g.input(Matrix::filled(1, 2, (t + 1) as f64 * 0.3));
            let (nh, nc) = cell.step(&mut g, x, h, c);
            h = nh;
            c = nc;
            let now = g.value(h).clone();
            assert_ne!(now, prev_h, "hidden state should change at step {t}");
            prev_h = now;
        }
    }

    #[test]
    fn autoencoder_learns_short_pattern() {
        let mut params = ParamStore::new(5);
        let ae = LstmAutoencoder::new(&mut params, "ae", 3, 12);
        let window = Matrix::from_fn(6, 3, |r, c| ((r + c) as f64 * 0.8).sin() * 0.5);
        let mut opt = Adam::new(5e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..250 {
            let (loss, grads) = {
                let mut g = Graph::new(&params);
                let l = ae.loss(&mut g, &window);
                (g.scalar(l), g.backward(l))
            };
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
            opt.step(&mut params, &grads);
        }
        assert!(
            last < first.unwrap() * 0.2,
            "LSTM-AE failed to learn: {first:?} → {last}"
        );
    }

    #[test]
    fn gradients_reach_encoder_through_time() {
        let mut params = ParamStore::new(6);
        let ae = LstmAutoencoder::new(&mut params, "ae", 2, 5);
        let window = Matrix::from_fn(5, 2, |r, c| (r as f64 - c as f64) * 0.2);
        let mut g = Graph::new(&params);
        let l = ae.loss(&mut g, &window);
        let grads = g.backward(l);
        assert!(
            grads.get(ae.encoder.wf.w).max_abs() > 0.0,
            "BPTT must reach the encoder"
        );
        assert!(grads.get(ae.readout.w).max_abs() > 0.0);
    }
}
