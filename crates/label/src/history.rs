//! Annotation history: an append-only action log with undo — the
//! `annotation_history.txt` mechanism of the labeling tool.

use crate::store::{Interval, LabelStore};
use serde::{Deserialize, Serialize};

/// One labeling action.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    Label {
        node: usize,
        interval: Interval,
    },
    Unlabel {
        node: usize,
        start: usize,
        end: usize,
    },
}

/// The history: actions applied in order; undo pops the latest and
/// replays the remainder onto a fresh store (labels merge/split in
/// non-invertible ways, so replay is the only faithful undo).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AnnotationHistory {
    actions: Vec<Action>,
}

impl AnnotationHistory {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.actions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Apply an action to the store and record it.
    pub fn apply(&mut self, store: &mut LabelStore, action: Action) {
        match &action {
            Action::Label { node, interval } => store.label(*node, interval.clone()),
            Action::Unlabel { node, start, end } => store.unlabel(*node, *start, *end),
        }
        self.actions.push(action);
    }

    /// Undo the latest action by replaying the remainder. Returns the
    /// rebuilt store, or `None` when there is nothing to undo.
    pub fn undo(&mut self) -> Option<LabelStore> {
        self.actions.pop()?;
        Some(self.replay())
    }

    /// Rebuild a store from the full action log.
    pub fn replay(&self) -> LabelStore {
        let mut store = LabelStore::new();
        for a in &self.actions {
            match a {
                Action::Label { node, interval } => store.label(*node, interval.clone()),
                Action::Unlabel { node, start, end } => store.unlabel(*node, *start, *end),
            }
        }
        store
    }

    /// JSON-lines export (one action per line).
    pub fn to_jsonl(&self) -> String {
        self.actions
            .iter()
            .map(|a| serde_json::to_string(a).expect("action serialises"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parse a JSON-lines log.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut actions = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            actions.push(serde_json::from_str(line).map_err(|e| format!("line {i}: {e}"))?);
        }
        Ok(Self { actions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_and_undo() {
        let mut store = LabelStore::new();
        let mut hist = AnnotationHistory::new();
        hist.apply(
            &mut store,
            Action::Label {
                node: 0,
                interval: Interval::new(10, 20, "a"),
            },
        );
        hist.apply(
            &mut store,
            Action::Label {
                node: 0,
                interval: Interval::new(30, 40, "b"),
            },
        );
        hist.apply(
            &mut store,
            Action::Unlabel {
                node: 0,
                start: 12,
                end: 15,
            },
        );
        assert_eq!(store.intervals(0).len(), 3);
        // Undo the unlabel: back to two whole intervals.
        let store = hist.undo().unwrap();
        assert_eq!(store.intervals(0).len(), 2);
        assert_eq!(store.intervals(0)[0], Interval::new(10, 20, "a"));
        // Undo everything.
        let store = hist.undo().unwrap();
        assert_eq!(store.intervals(0).len(), 1);
        let store = hist.undo().unwrap();
        assert!(store.intervals(0).is_empty());
        assert!(hist.undo().is_none());
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut store = LabelStore::new();
        let mut hist = AnnotationHistory::new();
        hist.apply(
            &mut store,
            Action::Label {
                node: 2,
                interval: Interval::new(1, 5, "x"),
            },
        );
        hist.apply(
            &mut store,
            Action::Unlabel {
                node: 2,
                start: 2,
                end: 3,
            },
        );
        let text = hist.to_jsonl();
        let hist2 = AnnotationHistory::from_jsonl(&text).unwrap();
        assert_eq!(hist2.len(), 2);
        let rebuilt = hist2.replay();
        assert_eq!(rebuilt.intervals(2), store.intervals(2));
    }

    #[test]
    fn corrupt_jsonl_is_an_error() {
        assert!(AnnotationHistory::from_jsonl("not json").is_err());
    }
}
