//! Cluster adjustment: the operator-facing loop that inspects automatic
//! clustering results, reassigns members, and keeps centroids current —
//! the `cluster_result.txt` / `cluster_adjust.txt` workflow of the
//! paper's tool.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Cluster assignments plus feature-space centroids, supporting manual
/// reassignment with automatic centroid updates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterAdjustment {
    /// Per-item feature vectors.
    features: Vec<Vec<f64>>,
    /// Raw algorithmic labels (never mutated after construction).
    original: Vec<usize>,
    /// Operator-adjusted labels.
    adjusted: Vec<usize>,
    centroids: Vec<Vec<f64>>,
}

impl ClusterAdjustment {
    /// Build from algorithmic output.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<usize>) -> Self {
        assert_eq!(features.len(), labels.len());
        let mut s = Self {
            original: labels.clone(),
            adjusted: labels,
            centroids: Vec::new(),
            features,
        };
        s.recompute_centroids();
        s
    }

    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    pub fn len(&self) -> usize {
        self.adjusted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.adjusted.is_empty()
    }

    pub fn labels(&self) -> &[usize] {
        &self.adjusted
    }

    pub fn original_labels(&self) -> &[usize] {
        &self.original
    }

    pub fn centroid(&self, c: usize) -> &[f64] {
        &self.centroids[c]
    }

    /// Items whose operator label differs from the algorithmic one.
    pub fn overrides(&self) -> Vec<usize> {
        self.original
            .iter()
            .zip(&self.adjusted)
            .enumerate()
            .filter(|(_, (o, a))| o != a)
            .map(|(i, _)| i)
            .collect()
    }

    /// Move one item to a target cluster (creating it if `target ==
    /// k()`), updating centroids.
    pub fn reassign(&mut self, item: usize, target: usize) {
        assert!(item < self.adjusted.len(), "item out of range");
        assert!(target <= self.k(), "target cluster out of range");
        self.adjusted[item] = target;
        self.recompute_centroids();
    }

    /// Recompute all centroids from current assignments.
    pub fn recompute_centroids(&mut self) {
        let k = self.adjusted.iter().max().map(|m| m + 1).unwrap_or(0);
        let dim = self.features.first().map(|f| f.len()).unwrap_or(0);
        let mut centroids = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (f, &l) in self.features.iter().zip(&self.adjusted) {
            counts[l] += 1;
            for (c, v) in centroids[l].iter_mut().zip(f) {
                *c += v;
            }
        }
        for (cen, &cnt) in centroids.iter_mut().zip(&counts) {
            for v in cen.iter_mut() {
                *v /= cnt.max(1) as f64;
            }
        }
        self.centroids = centroids;
    }

    /// Silhouette of the adjusted clustering (diagnostic shown to the
    /// operator after each adjustment).
    pub fn silhouette(&self) -> f64 {
        if self.features.len() < 3 {
            return 0.0;
        }
        let dist = ns_linalg::distance::CondensedDistance::compute(self.features.len(), |i, j| {
            ns_linalg::vecops::euclidean(&self.features[i], &self.features[j])
        });
        ns_cluster::silhouette_score(&dist, &self.adjusted)
    }

    /// Export `item cluster` rows (the `cluster_adjust.txt` format);
    /// `original` selects the raw algorithmic labels instead.
    pub fn export(&self, original: bool) -> String {
        let labels = if original {
            &self.original
        } else {
            &self.adjusted
        };
        let mut s = String::new();
        for (i, l) in labels.iter().enumerate() {
            let _ = writeln!(s, "{i} {l}");
        }
        s
    }

    /// Parse an exported label file back into an assignment vector.
    pub fn parse_labels(text: &str) -> Result<Vec<usize>, String> {
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let idx: usize = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: missing index"))?
                .parse()
                .map_err(|e| format!("line {lineno}: {e}"))?;
            let label: usize = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: missing label"))?
                .parse()
                .map_err(|e| format!("line {lineno}: {e}"))?;
            if idx != out.len() {
                return Err(format!("line {lineno}: indices must be dense and ordered"));
            }
            out.push(label);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClusterAdjustment {
        let features = vec![
            vec![0.0, 0.0],
            vec![0.2, 0.0],
            vec![10.0, 10.0],
            vec![10.2, 9.8],
        ];
        ClusterAdjustment::new(features, vec![0, 0, 1, 1])
    }

    #[test]
    fn centroids_track_assignments() {
        let adj = sample();
        assert_eq!(adj.k(), 2);
        assert!((adj.centroid(0)[0] - 0.1).abs() < 1e-12);
        assert!((adj.centroid(1)[1] - 9.9).abs() < 1e-12);
    }

    #[test]
    fn reassignment_updates_centroids_and_overrides() {
        let mut adj = sample();
        adj.reassign(1, 1);
        assert_eq!(adj.labels(), &[0, 1, 1, 1]);
        assert_eq!(adj.overrides(), vec![1]);
        // Cluster 0 centroid now equals item 0 exactly.
        assert_eq!(adj.centroid(0), &[0.0, 0.0]);
        // Original labels preserved.
        assert_eq!(adj.original_labels(), &[0, 0, 1, 1]);
    }

    #[test]
    fn creating_a_new_cluster() {
        let mut adj = sample();
        adj.reassign(3, 2);
        assert_eq!(adj.k(), 3);
        assert_eq!(adj.centroid(2), &[10.2, 9.8]);
    }

    #[test]
    fn silhouette_degrades_with_bad_adjustment() {
        let mut adj = sample();
        let before = adj.silhouette();
        adj.reassign(0, 1); // mix the blobs
        let after = adj.silhouette();
        assert!(after < before, "before {before} after {after}");
    }

    #[test]
    fn export_parse_roundtrip() {
        let mut adj = sample();
        adj.reassign(2, 0);
        let text = adj.export(false);
        let parsed = ClusterAdjustment::parse_labels(&text).unwrap();
        assert_eq!(parsed, adj.labels());
        assert!(ClusterAdjustment::parse_labels("0 0\n2 1\n").is_err()); // gap
        assert!(ClusterAdjustment::parse_labels("0 x\n").is_err());
    }
}
