//! Assisted labeling: the built-in detectors the tool runs to pre-suggest
//! anomalous intervals, which operators then confirm or discard
//! ("to alleviate the workload, we integrate multiple anomaly detection
//! methods to aid in labeling").

use crate::store::Interval;
use ns_eval::threshold::{ksigma_detect, KSigmaConfig};
use ns_linalg::matrix::Matrix;
use ns_linalg::stats;

/// A suggested anomaly with a confidence in `[0, 1]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Suggestion {
    pub interval: Interval,
    pub confidence: f64,
    /// Which detector produced it.
    pub source: &'static str,
}

/// Convert a boolean flag series to merged intervals, dropping runs
/// shorter than `min_len`.
pub fn flags_to_intervals(flags: &[bool], min_len: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < flags.len() {
        if flags[i] {
            let start = i;
            while i < flags.len() && flags[i] {
                i += 1;
            }
            if i - start >= min_len.max(1) {
                out.push((start, i));
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Suggest anomalies over an MTS by running a k-sigma detector per metric
/// and voting: a point is suggested when at least `min_votes` metrics
/// flag it. Confidence = mean vote fraction over the interval.
pub fn suggest_ksigma(
    data: &Matrix,
    cfg: &KSigmaConfig,
    min_votes: usize,
    min_len: usize,
) -> Vec<Suggestion> {
    let (rows, cols) = data.shape();
    if rows == 0 || cols == 0 {
        return Vec::new();
    }
    let mut votes = vec![0usize; rows];
    for c in 0..cols {
        let col = data.col(c);
        // The per-metric score is deviation from the running context —
        // use the absolute series directly (standardized inputs assumed).
        let flags = ksigma_detect(&col.iter().map(|v| v.abs()).collect::<Vec<_>>(), cfg);
        for (v, f) in votes.iter_mut().zip(flags) {
            if f {
                *v += 1;
            }
        }
    }
    let flagged: Vec<bool> = votes.iter().map(|&v| v >= min_votes.max(1)).collect();
    flags_to_intervals(&flagged, min_len)
        .into_iter()
        .map(|(s, e)| {
            let conf = votes[s..e]
                .iter()
                .map(|&v| v as f64 / cols as f64)
                .sum::<f64>()
                / (e - s) as f64;
            Suggestion {
                interval: Interval::new(s, e, "ksigma"),
                confidence: conf.min(1.0),
                source: "ksigma",
            }
        })
        .collect()
}

/// Suggest level shifts: split the series into halves around each
/// candidate point using a rolling median comparison; flags sustained
/// mean shifts larger than `threshold` (in robust sigma units).
pub fn suggest_level_shift(data: &Matrix, window: usize, threshold: f64) -> Vec<Suggestion> {
    let rows = data.rows();
    if rows < 2 * window {
        return Vec::new();
    }
    let mut flagged = vec![false; rows];
    for c in 0..data.cols() {
        let col = data.col(c);
        // Robust noise scale from first differences — the raw series'
        // spread includes the level shift we are looking for.
        let diffs: Vec<f64> = col.windows(2).map(|w| w[1] - w[0]).collect();
        let sigma = (stats::mad(&diffs) * 1.4826).max(1e-6);
        for t in window..rows - window {
            let before = stats::median(&col[t - window..t]);
            let after = stats::median(&col[t..t + window]);
            if (after - before).abs() > threshold * sigma {
                flagged[t] = true;
            }
        }
    }
    flags_to_intervals(&flagged, 2)
        .into_iter()
        .map(|(s, e)| Suggestion {
            interval: Interval::new(s, e, "level_shift"),
            confidence: 0.5,
            source: "level_shift",
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_to_intervals_merges_runs() {
        let flags = [false, true, true, false, true, false, true, true, true];
        assert_eq!(flags_to_intervals(&flags, 1), vec![(1, 3), (4, 5), (6, 9)]);
        assert_eq!(flags_to_intervals(&flags, 2), vec![(1, 3), (6, 9)]);
        assert!(flags_to_intervals(&[], 1).is_empty());
    }

    #[test]
    fn ksigma_suggests_injected_burst() {
        let data = Matrix::from_fn(300, 3, |t, m| {
            let base = ((t as f64) * 0.1 + m as f64).sin() * 0.1;
            if (200..215).contains(&t) {
                base + 5.0
            } else {
                base
            }
        });
        let sugg = suggest_ksigma(&data, &KSigmaConfig::default(), 2, 2);
        assert!(!sugg.is_empty(), "no suggestions produced");
        let hit = sugg
            .iter()
            .any(|s| s.interval.start >= 195 && s.interval.start <= 205);
        assert!(hit, "suggestions {sugg:?} missed the burst");
        assert!(sugg
            .iter()
            .all(|s| s.confidence > 0.0 && s.confidence <= 1.0));
    }

    #[test]
    fn quiet_data_produces_no_suggestions() {
        let data = Matrix::from_fn(200, 2, |t, _| ((t % 7) as f64) * 0.01);
        let sugg = suggest_ksigma(&data, &KSigmaConfig::default(), 1, 2);
        assert!(sugg.len() <= 1, "noisy over-suggestion: {sugg:?}");
    }

    #[test]
    fn level_shift_detector_fires_on_step() {
        let data = Matrix::from_fn(
            200,
            1,
            |t, _| if t < 100 { 0.0 } else { 2.0 } + ((t % 5) as f64) * 0.01,
        );
        let sugg = suggest_level_shift(&data, 20, 4.0);
        assert!(!sugg.is_empty());
        assert!(sugg.iter().any(|s| (80..120).contains(&s.interval.start)));
    }
}
