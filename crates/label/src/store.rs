//! Anomaly-interval label storage with per-node CSV persistence — the
//! `labels/` directory format of the paper's labeling tool (artifact A2).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A labelled anomaly interval `[start, end)` with an optional note.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    pub start: usize,
    pub end: usize,
    pub note: String,
}

impl Interval {
    pub fn new(start: usize, end: usize, note: impl Into<String>) -> Self {
        assert!(start < end, "interval must be non-empty");
        Self {
            start,
            end,
            note: note.into(),
        }
    }

    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Per-node label store. Intervals are kept sorted and non-overlapping
/// (labels merge on overlap, as the GUI tool does when an operator drags
/// across an existing annotation).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LabelStore {
    nodes: BTreeMap<usize, Vec<Interval>>,
}

impl LabelStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (and merge) an anomaly interval for a node.
    pub fn label(&mut self, node: usize, interval: Interval) {
        let list = self.nodes.entry(node).or_default();
        let mut merged = interval;
        let mut kept: Vec<Interval> = Vec::with_capacity(list.len() + 1);
        for iv in list.drain(..) {
            if iv.overlaps(&merged) || iv.end == merged.start || merged.end == iv.start {
                merged.start = merged.start.min(iv.start);
                merged.end = merged.end.max(iv.end);
                if merged.note.is_empty() {
                    merged.note = iv.note;
                }
            } else {
                kept.push(iv);
            }
        }
        kept.push(merged);
        kept.sort_by_key(|iv| iv.start);
        *list = kept;
    }

    /// Remove labels overlapping `[start, end)` for a node, truncating
    /// partial overlaps ("cancel anomalous intervals").
    pub fn unlabel(&mut self, node: usize, start: usize, end: usize) {
        let Some(list) = self.nodes.get_mut(&node) else {
            return;
        };
        let mut next: Vec<Interval> = Vec::with_capacity(list.len());
        for iv in list.drain(..) {
            if iv.end <= start || iv.start >= end {
                next.push(iv);
                continue;
            }
            if iv.start < start {
                next.push(Interval {
                    start: iv.start,
                    end: start,
                    note: iv.note.clone(),
                });
            }
            if iv.end > end {
                next.push(Interval {
                    start: end,
                    end: iv.end,
                    note: iv.note.clone(),
                });
            }
        }
        *list = next;
    }

    /// Intervals for a node (sorted).
    pub fn intervals(&self, node: usize) -> &[Interval] {
        self.nodes.get(&node).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Nodes that carry at least one label.
    pub fn labelled_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&n, _)| n)
            .collect()
    }

    /// Point-wise boolean labels over `[0, horizon)`.
    pub fn point_labels(&self, node: usize, horizon: usize) -> Vec<bool> {
        let mut out = vec![false; horizon];
        for iv in self.intervals(node) {
            for slot in out[iv.start.min(horizon)..iv.end.min(horizon)].iter_mut() {
                *slot = true;
            }
        }
        out
    }

    /// Serialise one node's labels as CSV (`start,end,note`).
    pub fn to_csv(&self, node: usize) -> String {
        let mut s = String::from("start,end,note\n");
        for iv in self.intervals(node) {
            let _ = writeln!(s, "{},{},{}", iv.start, iv.end, iv.note.replace(',', ";"));
        }
        s
    }

    /// Parse one node's labels from CSV produced by [`Self::to_csv`].
    pub fn load_csv(&mut self, node: usize, csv: &str) -> Result<(), String> {
        for (lineno, line) in csv.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, ',');
            let start: usize = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: missing start"))?
                .trim()
                .parse()
                .map_err(|e| format!("line {lineno}: {e}"))?;
            let end: usize = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: missing end"))?
                .trim()
                .parse()
                .map_err(|e| format!("line {lineno}: {e}"))?;
            if start >= end {
                return Err(format!("line {lineno}: empty interval {start}..{end}"));
            }
            let note = parts.next().unwrap_or("").to_string();
            self.label(node, Interval { start, end, note });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_and_query() {
        let mut s = LabelStore::new();
        s.label(3, Interval::new(10, 20, "oom"));
        s.label(3, Interval::new(40, 50, ""));
        assert_eq!(s.intervals(3).len(), 2);
        assert_eq!(s.labelled_nodes(), vec![3]);
        let pts = s.point_labels(3, 60);
        assert!(pts[10] && pts[19] && !pts[20] && pts[45]);
    }

    #[test]
    fn overlapping_labels_merge() {
        let mut s = LabelStore::new();
        s.label(0, Interval::new(10, 20, "a"));
        s.label(0, Interval::new(15, 30, "b"));
        s.label(0, Interval::new(30, 35, "c")); // adjacent merges too
                                                // The most recent non-empty note wins the merged interval.
        assert_eq!(s.intervals(0), &[Interval::new(10, 35, "c")]);
    }

    #[test]
    fn unlabel_truncates_partial_overlaps() {
        let mut s = LabelStore::new();
        s.label(0, Interval::new(10, 40, "x"));
        s.unlabel(0, 20, 30);
        assert_eq!(
            s.intervals(0),
            &[Interval::new(10, 20, "x"), Interval::new(30, 40, "x")]
        );
        s.unlabel(0, 0, 100);
        assert!(s.intervals(0).is_empty());
    }

    #[test]
    fn csv_roundtrip() {
        let mut s = LabelStore::new();
        s.label(7, Interval::new(5, 9, "net, partition"));
        s.label(7, Interval::new(20, 22, ""));
        let csv = s.to_csv(7);
        let mut s2 = LabelStore::new();
        s2.load_csv(7, &csv).unwrap();
        assert_eq!(s2.intervals(7).len(), 2);
        assert_eq!(s2.intervals(7)[0].note, "net; partition");
    }

    #[test]
    fn csv_rejects_garbage() {
        let mut s = LabelStore::new();
        assert!(s.load_csv(0, "start,end,note\nfoo,3,\n").is_err());
        assert!(s.load_csv(0, "start,end,note\n9,3,\n").is_err());
        assert!(s.load_csv(0, "start,end,note\n\n").is_ok());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_interval_rejected() {
        Interval::new(5, 5, "");
    }
}
