//! `ns-label` — the headless reproduction of the paper's labeling and
//! cluster-adjustment toolkit (computational artifact A2).
//!
//! The original is a Tkinter GUI; the verifiable behaviours live here:
//!
//! * [`store`] — anomaly-interval labels with merge/split semantics and
//!   the per-node CSV persistence format (`labels/` directory).
//! * [`history`] — the append-only annotation log with replay-based undo
//!   (`annotation_history.txt`).
//! * [`adjust`] — operator cluster adjustment: reassign segments, track
//!   overrides against the algorithmic labels, keep centroids and the
//!   silhouette diagnostic current (`cluster_result.txt` /
//!   `cluster_adjust.txt`).
//! * [`assist`] — the built-in suggestion detectors (k-sigma voting,
//!   level-shift scan) that pre-annotate data for operators.
//!
//! `examples/labeler.rs` wires these into a CLI workflow.

pub mod adjust;
pub mod assist;
pub mod history;
pub mod store;

pub use adjust::ClusterAdjustment;
pub use assist::{flags_to_intervals, suggest_ksigma, suggest_level_shift, Suggestion};
pub use history::{Action, AnnotationHistory};
pub use store::{Interval, LabelStore};
