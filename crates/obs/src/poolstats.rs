//! Thread-pool scheduling telemetry bridge.
//!
//! `ns-obs` is deliberately dependency-free, so it cannot read the
//! vendored rayon pool's counters itself. Instead, a crate that depends
//! on both (the streaming engine, the bench harness) [`install`]s a
//! provider closure once; from then on the pool shows up in both
//! operational surfaces:
//!
//! * `/metrics` — [`sync`] (called by the exporter on every `/metrics`
//!   scrape) converts provider snapshots into registry counters/gauges:
//!   `pool_tasks_total`, `pool_steals_total`, `pool_parks_total`,
//!   `pool_unparks_total`, `pool_jobs_total`, `pool_workers`,
//!   `pool_queued_jobs`, and per-worker
//!   `pool_worker_busy_us_total{worker="N"}`.
//! * `/statusz` — installation registers a `"pool"` section rendering
//!   the live snapshot as JSON.
//!
//! Counters are delta-synced against the last snapshot taken while
//! metrics were enabled, so pool activity that happens between scrapes
//! (or across `Registry::reset` in tests) is never double-counted and
//! never lost while enabled.

use std::sync::{Mutex, OnceLock};

/// One reading of the pool's scheduling counters (see the vendored
/// rayon's `pool_stats()` — field meanings match 1:1).
#[derive(Clone, Debug, Default)]
pub struct PoolSnapshot {
    /// Worker threads spawned so far (excludes callers).
    pub workers: usize,
    /// Jobs published and not yet fully claimed.
    pub queued_jobs: usize,
    /// Parallel jobs submitted since process start.
    pub jobs_submitted: u64,
    /// Chunks (tasks) executed.
    pub tasks_executed: u64,
    /// Chunks claimed from another participant's lane.
    pub steals: u64,
    /// Worker park transitions.
    pub parks: u64,
    /// Worker unpark transitions.
    pub unparks: u64,
    /// Per-worker busy nanoseconds, indexed by worker id.
    pub busy_ns: Vec<u64>,
}

type Provider = Box<dyn Fn() -> PoolSnapshot + Send + Sync>;

static PROVIDER: OnceLock<Provider> = OnceLock::new();
static LAST: Mutex<Option<PoolSnapshot>> = Mutex::new(None);

/// Install the snapshot provider (first call wins; later calls are
/// no-ops so every engine in a process can call this unconditionally).
/// Registers the `"pool"` `/statusz` section as a side effect.
pub fn install(provider: impl Fn() -> PoolSnapshot + Send + Sync + 'static) {
    if PROVIDER.set(Box::new(provider)).is_ok() {
        crate::status::register_section("pool", render_section);
    }
}

/// Whether a provider has been installed.
pub fn is_installed() -> bool {
    PROVIDER.get().is_some()
}

/// The current pool snapshot, if a provider is installed.
pub fn snapshot() -> Option<PoolSnapshot> {
    PROVIDER.get().map(|p| p())
}

/// Fold the provider's counters into the global metrics registry.
/// Called by the exporter on every `/metrics` scrape; safe (and cheap)
/// to call anytime. No-op while metrics are disabled or before
/// [`install`].
pub fn sync() {
    if !crate::metrics::is_enabled() {
        return;
    }
    let Some(provider) = PROVIDER.get() else {
        return;
    };
    let snap = provider();
    let reg = crate::metrics::global();
    let mut last = LAST.lock().unwrap_or_else(|e| e.into_inner());
    let prev = last.take().unwrap_or_default();
    let d = |new: u64, old: u64| new.saturating_sub(old);

    reg.counter(
        "pool_jobs_total",
        "Parallel jobs submitted to the pool.",
        &[],
    )
    .add(d(snap.jobs_submitted, prev.jobs_submitted));
    reg.counter("pool_tasks_total", "Pool task chunks executed.", &[])
        .add(d(snap.tasks_executed, prev.tasks_executed));
    reg.counter(
        "pool_steals_total",
        "Task chunks stolen from another participant's lane.",
        &[],
    )
    .add(d(snap.steals, prev.steals));
    reg.counter("pool_parks_total", "Worker park transitions.", &[])
        .add(d(snap.parks, prev.parks));
    reg.counter("pool_unparks_total", "Worker unpark transitions.", &[])
        .add(d(snap.unparks, prev.unparks));
    reg.gauge("pool_workers", "Worker threads spawned.", &[])
        .set(snap.workers as i64);
    reg.gauge(
        "pool_queued_jobs",
        "Jobs published and not yet fully claimed.",
        &[],
    )
    .set(snap.queued_jobs as i64);
    for (i, &busy) in snap.busy_ns.iter().enumerate() {
        let old = prev.busy_ns.get(i).copied().unwrap_or(0);
        let worker = i.to_string();
        reg.counter(
            "pool_worker_busy_us_total",
            "Per-worker busy time in microseconds.",
            &[("worker", &worker)],
        )
        .add(d(busy, old) / 1_000);
    }
    *last = Some(snap);
}

/// The `"pool"` `/statusz` section: the live snapshot as JSON.
fn render_section() -> String {
    let Some(s) = snapshot() else {
        return "null".to_string();
    };
    let busy_ms: Vec<String> = s
        .busy_ns
        .iter()
        .map(|ns| (ns / 1_000_000).to_string())
        .collect();
    format!(
        concat!(
            "{{\"workers\":{},\"queued_jobs\":{},\"jobs_submitted\":{},",
            "\"tasks_executed\":{},\"steals\":{},\"parks\":{},\"unparks\":{},",
            "\"worker_busy_ms\":[{}]}}"
        ),
        s.workers,
        s.queued_jobs,
        s.jobs_submitted,
        s.tasks_executed,
        s.steals,
        s.parks,
        s.unparks,
        busy_ms.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static FAKE_TASKS: AtomicU64 = AtomicU64::new(10);

    fn install_fake() {
        install(|| PoolSnapshot {
            workers: 2,
            queued_jobs: 1,
            jobs_submitted: 4,
            tasks_executed: FAKE_TASKS.load(Ordering::Relaxed),
            steals: 3,
            parks: 5,
            unparks: 5,
            busy_ns: vec![2_000_000, 7_500_000],
        });
    }

    #[test]
    fn sync_exports_counters_and_section_renders() {
        install_fake();
        assert!(is_installed());
        crate::metrics::set_enabled(true);
        sync();
        FAKE_TASKS.store(25, Ordering::Relaxed);
        sync();
        let text = crate::metrics::global().render();
        assert!(text.contains("pool_tasks_total"), "{text}");
        assert!(text.contains("pool_workers 2"), "{text}");
        assert!(
            text.contains("pool_worker_busy_us_total{worker=\"1\"}"),
            "{text}"
        );
        let section = render_section();
        assert!(section.contains("\"workers\":2"), "{section}");
        assert!(section.contains("\"worker_busy_ms\":[2,7]"), "{section}");
        crate::metrics::set_enabled(false);
    }
}
