//! `ns-obs` — zero-dependency observability for the NodeSentry stack.
//!
//! Three pieces, all std-only so they can ride inside every hot path:
//!
//! * [`trace`] — a hierarchical span tracer. [`span!`] opens a
//!   [`trace::SpanGuard`] that records wall time into a thread-safe span
//!   tree keyed by `parent/child` paths; [`trace::report`] renders a
//!   flamegraph-style text breakdown and [`trace::export_jsonl`] dumps
//!   the raw span events one JSON object per line.
//! * [`metrics`] — a registry of named counters, gauges and log-bucketed
//!   histograms. Every update is a single atomic op behind one relaxed
//!   enabled-flag load, cheap enough for per-tick hot paths.
//!   [`metrics::Registry::render`] emits Prometheus text exposition
//!   format (0.0.4).
//! * [`events`] — a bounded structured event journal (fixed-size
//!   records, monotonic sequence numbers, typed kinds) — the flight
//!   recorder's tape.
//! * [`incident`] — flight-recorder capture: armed trigger predicates
//!   snapshot recent events, metric deltas, the span report, and engine
//!   context into bounded JSONL incident dumps.
//! * [`status`] — `/statusz` composition: process uptime/readiness plus
//!   pluggable JSON sections registered by other crates.
//! * [`poolstats`] — bridge from the vendored rayon pool's scheduling
//!   counters (tasks, steals, park/unpark, per-worker busy time) into
//!   `/metrics` and `/statusz`, fed by an installable provider so this
//!   crate stays dependency-free.
//! * [`exporter`] — a `std::net::TcpListener` HTTP surface serving the
//!   global registry at `/metrics` plus the operational routes
//!   (`/healthz`, `/readyz`, `/statusz`, `/debug/events`,
//!   `/debug/incidents`), spawnable from the streaming engine.
//!
//! # The no-op-when-disabled guarantee
//!
//! Every subsystem starts **disabled**. While disabled, a span guard is
//! two `Instant::now` calls and a metric update or event append is one
//! relaxed atomic load; none takes a lock, allocates, or touches shared
//! state.
//! Observability never reads or writes pipeline data in either state, so
//! enabling it cannot change a single verdict bit —
//! `tests/obs_equivalence.rs` holds the streaming engine to that
//! contract with `f64::to_bits` equality.
//!
//! ```
//! ns_obs::enable_all();
//! {
//!     let _outer = ns_obs::trace::span("demo");
//!     let _inner = ns_obs::trace::span("step");
//!     ns_obs::metrics::global()
//!         .counter("demo_total", "Demo events.", &[])
//!         .inc();
//! }
//! assert!(ns_obs::trace::stats("demo/step").is_some());
//! assert!(ns_obs::metrics::global().render().contains("demo_total 1"));
//! ns_obs::disable_all();
//! ```

pub mod events;
pub mod exporter;
pub mod incident;
pub mod metrics;
pub mod poolstats;
pub mod status;
pub mod trace;

pub use events::{EventKind, EventRecord};
pub use incident::Incident;
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use trace::SpanGuard;

/// Switch tracing, metrics, and the event journal on together (the
/// usual deployment mode). Incident capture stays disarmed — arming the
/// flight recorder ([`incident::set_armed`]) is a separate decision.
/// Also pins the [`status::process_epoch`] so `/statusz` uptime counts
/// from enablement at the latest.
pub fn enable_all() {
    status::process_epoch();
    trace::set_enabled(true);
    metrics::set_enabled(true);
    events::set_enabled(true);
}

/// Switch tracing, metrics, and the event journal off together (and
/// disarm incident capture). Already-recorded spans, metric values,
/// events, and incidents are retained (use [`trace::reset`] /
/// [`metrics::Registry::reset`] / [`events::reset`] /
/// [`incident::reset`] to clear them).
pub fn disable_all() {
    trace::set_enabled(false);
    metrics::set_enabled(false);
    events::set_enabled(false);
    incident::set_armed(false);
}

/// Open a named [`trace::SpanGuard`] covering the rest of the enclosing
/// scope:
///
/// ```
/// fn stage() {
///     ns_obs::span!("pipeline.stage");
///     // ... the whole function body is timed ...
/// }
/// stage();
/// ```
///
/// The guard is bound to a hidden local so a bare `span!(...)` statement
/// is enough; use [`trace::span`] directly when the guard itself is
/// needed (early `drop`, [`trace::SpanGuard::finish_seconds`]).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _ns_obs_span_guard = $crate::trace::span($name);
    };
}

/// Unit tests toggle the process-wide enable flags, so they serialize on
/// one lock to stay independent of the harness thread count.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    fn enable_disable_roundtrip() {
        let _l = crate::test_lock();
        crate::enable_all();
        assert!(crate::trace::is_enabled());
        assert!(crate::metrics::is_enabled());
        assert!(crate::events::is_enabled());
        assert!(
            !crate::incident::is_armed(),
            "arming the recorder is a separate decision"
        );
        crate::disable_all();
        assert!(!crate::trace::is_enabled());
        assert!(!crate::metrics::is_enabled());
        assert!(!crate::events::is_enabled());
    }
}
