//! Minimal HTTP `/metrics` endpoint over `std::net::TcpListener`.
//!
//! One accept-loop thread serves the [global metrics
//! registry](crate::metrics::global) in Prometheus text exposition
//! format. No HTTP library: the request line is parsed just far enough
//! to route `/metrics` (or `/`) vs everything else, which is exactly
//! what a Prometheus scraper needs.

use crate::metrics;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to a running exporter. Dropping it (or calling
/// [`shutdown`](MetricsServer::shutdown)) stops the accept loop and
/// joins the serving thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address — with port 0 requested, the actual ephemeral
    /// port chosen by the OS.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:9464"`, or port `0` for an ephemeral
/// port in tests) and serve the global registry at `/metrics` on a
/// background thread.
pub fn serve(addr: &str) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("ns-obs-metrics".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        // Serve inline: scrapes are tiny and sequential.
                        let _ = handle_conn(stream);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => continue,
                    Err(_) => break,
                }
            }
        })?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

fn handle_conn(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // Read at most one request head; anything beyond 4 KiB is not a
    // scrape we care about.
    let mut buf = [0u8; 4096];
    let mut used = 0usize;
    loop {
        if used == buf.len() {
            break;
        }
        match stream.read(&mut buf[used..]) {
            Ok(0) => break,
            Ok(n) => {
                used += n;
                if buf[..used].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf[..used]);
    let path = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, body) = if path == "/metrics" || path == "/" {
        ("200 OK", metrics::global().render())
    } else {
        ("404 Not Found", "not found; scrape /metrics\n".to_string())
    };
    let resp = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(resp.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let _l = crate::test_lock();
        metrics::set_enabled(true);
        metrics::global()
            .counter("exporter_test_total", "Exporter smoke counter.", &[])
            .add(5);
        metrics::set_enabled(false);
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.local_addr();
        let ok = get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"));
        assert!(ok.contains("exporter_test_total 5"), "{ok}");
        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.shutdown();
        // Port released: connecting now fails or yields no response.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(100)).is_err());
    }
}
