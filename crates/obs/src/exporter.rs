//! Operational HTTP surface over `std::net::TcpListener`.
//!
//! One accept-loop thread hands each connection to a short-lived worker
//! thread with a hard per-connection deadline, so a stalled (slow-loris)
//! client can never delay other scrapes. No HTTP library: the request
//! line is parsed just far enough to route.
//!
//! | Route               | Serves                                              |
//! |---------------------|-----------------------------------------------------|
//! | `/metrics` (or `/`) | Prometheus text exposition of the global registry   |
//! | `/healthz`          | liveness — `200 ok` while the process runs          |
//! | `/readyz`           | readiness — `503` until [`status::set_ready`]       |
//! | `/statusz`          | [`status::render`] JSON (uptime, shards, sections)  |
//! | `/debug/events?n=`  | newest `n` journal records as JSON (default 256)    |
//! | `/debug/incidents`  | flight-recorder dumps as JSONL                      |
//!
//! Unknown paths get 404, non-GET methods 405, and an unparseable
//! request line 400 — all exercised by `tests/obs_equivalence.rs`.

use crate::{events, incident, metrics, status};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Hard wall-clock budget for one connection (read + respond). A client
/// that has not produced a full request head by then gets 400 and the
/// socket back.
const CONN_DEADLINE: Duration = Duration::from_secs(2);
/// Read timeout per slice — the deadline is enforced across slices.
const READ_SLICE: Duration = Duration::from_millis(100);
/// Default and maximum event counts for `/debug/events`.
const EVENTS_DEFAULT_N: usize = 256;
const EVENTS_MAX_N: usize = 65_536;

const CT_PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
const CT_TEXT: &str = "text/plain; charset=utf-8";
const CT_JSON: &str = "application/json";
const CT_JSONL: &str = "application/x-ndjson";

/// Handle to a running exporter. Dropping it (or calling
/// [`shutdown`](MetricsServer::shutdown)) stops the accept loop and
/// joins the serving threads.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl MetricsServer {
    /// The bound address — with port 0 requested, the actual ephemeral
    /// port chosen by the OS.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the server threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        // In-flight connections finish within their deadline.
        let drained: Vec<_> = {
            let mut w = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            w.drain(..).collect()
        };
        for h in drained {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:9464"`, or port `0` for an ephemeral
/// port in tests) and serve the operational surface on background
/// threads. Also pins the [`status::process_epoch`] so `/statusz`
/// uptime counts from first serve at the latest.
pub fn serve(addr: &str) -> std::io::Result<MetricsServer> {
    status::process_epoch();
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let pool = Arc::clone(&workers);
    let handle = std::thread::Builder::new()
        .name("ns-obs-http".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        // One short-lived thread per connection: a
                        // stalled client burns its own deadline, not the
                        // accept loop.
                        let spawned = std::thread::Builder::new()
                            .name("ns-obs-http-conn".into())
                            .spawn(move || {
                                let _ = handle_conn(stream);
                            });
                        let mut w = pool.lock().unwrap_or_else(|e| e.into_inner());
                        w.retain(|h| !h.is_finished());
                        if let Ok(h) = spawned {
                            w.push(h);
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => continue,
                    Err(_) => break,
                }
            }
        })?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
        workers,
    })
}

/// Route a request line's target to `(status, content-type, body)`.
/// Factored out of the socket handling so tests can hit it directly.
pub(crate) fn route(target: &str) -> (u16, &'static str, String) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" | "/" => {
            // Fold the thread pool's scheduling counters into the
            // registry so every scrape sees them fresh.
            crate::poolstats::sync();
            (200, CT_PROM, metrics::global().render())
        }
        "/healthz" => (200, CT_TEXT, "ok\n".to_string()),
        "/readyz" => {
            if status::is_ready() {
                (200, CT_TEXT, "ready\n".to_string())
            } else {
                (503, CT_TEXT, "not ready\n".to_string())
            }
        }
        "/statusz" => (200, CT_JSON, status::render()),
        "/debug/events" => match parse_events_n(query) {
            Some(n) => (200, CT_JSON, events::render_json(n)),
            None => (
                400,
                CT_TEXT,
                "bad query: expected n=<positive integer>\n".to_string(),
            ),
        },
        "/debug/incidents" => (200, CT_JSONL, incident::render_jsonl()),
        _ => (
            404,
            CT_TEXT,
            "not found; try /metrics /healthz /readyz /statusz /debug/events /debug/incidents\n"
                .to_string(),
        ),
    }
}

fn parse_events_n(query: Option<&str>) -> Option<usize> {
    let Some(query) = query else {
        return Some(EVENTS_DEFAULT_N);
    };
    let mut n = EVENTS_DEFAULT_N;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("n", v)) => n = v.parse::<usize>().ok().filter(|&n| n > 0)?,
            // Unknown parameters are rejected rather than ignored: a
            // typoed `m=10` silently serving 256 events is a debugging
            // trap.
            _ => return None,
        }
    }
    Some(n.min(EVENTS_MAX_N))
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "200 OK",
        400 => "400 Bad Request",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        503 => "503 Service Unavailable",
        _ => "500 Internal Server Error",
    }
}

fn handle_conn(mut stream: TcpStream) -> std::io::Result<()> {
    let deadline = Instant::now() + CONN_DEADLINE;
    stream.set_read_timeout(Some(READ_SLICE))?;
    stream.set_write_timeout(Some(READ_SLICE))?;
    // Read at most one request head; anything beyond 4 KiB is not a
    // scrape we care about.
    let mut buf = [0u8; 4096];
    let mut used = 0usize;
    let mut complete = false;
    while used < buf.len() && Instant::now() < deadline {
        match stream.read(&mut buf[used..]) {
            Ok(0) => break,
            Ok(n) => {
                used += n;
                if buf[..used].windows(4).any(|w| w == b"\r\n\r\n") {
                    complete = true;
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    if used == 0 {
        // Connected and closed without a byte (the shutdown knock).
        return Ok(());
    }
    let head = String::from_utf8_lossy(&buf[..used]);
    let mut tokens = head.lines().next().unwrap_or("").split_whitespace();
    let (code, ctype, body) = match (tokens.next(), tokens.next(), complete) {
        (Some("GET"), Some(target), true) => route(target),
        (Some("GET") | None, _, _) | (_, None, _) => (
            400,
            CT_TEXT,
            "malformed request: expected `GET <path> HTTP/1.1`\n".to_string(),
        ),
        (Some(_), Some(_), _) => (405, CT_TEXT, "method not allowed; use GET\n".to_string()),
    };
    let resp = format!(
        "HTTP/1.1 {}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        status_text(code),
        body.len(),
    );
    stream.write_all(resp.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let _l = crate::test_lock();
        metrics::set_enabled(true);
        metrics::global()
            .counter("exporter_test_total", "Exporter smoke counter.", &[])
            .add(5);
        metrics::set_enabled(false);
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.local_addr();
        let ok = get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"));
        assert!(ok.contains("exporter_test_total 5"), "{ok}");
        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.shutdown();
        // Port released: connecting now fails or yields no response.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(100)).is_err());
    }

    #[test]
    fn operational_routes_respond() {
        let _l = crate::test_lock();
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.local_addr();
        assert!(get(addr, "/healthz").contains("ok"));
        status::set_ready(false);
        assert!(get(addr, "/readyz").starts_with("HTTP/1.1 503"));
        status::set_ready(true);
        assert!(get(addr, "/readyz").starts_with("HTTP/1.1 200"));
        let statusz = get(addr, "/statusz");
        assert!(statusz.contains("application/json"), "{statusz}");
        assert!(statusz.contains("\"uptime_s\":"), "{statusz}");
        let events = get(addr, "/debug/events?n=3");
        assert!(events.starts_with("HTTP/1.1 200"), "{events}");
        assert!(events.contains("\"events\":["), "{events}");
        assert!(get(addr, "/debug/events?n=zero").starts_with("HTTP/1.1 400"));
        assert!(get(addr, "/debug/events?n=0").starts_with("HTTP/1.1 400"));
        assert!(get(addr, "/debug/events?bogus=1").starts_with("HTTP/1.1 400"));
        let incidents = get(addr, "/debug/incidents");
        assert!(incidents.contains("x-ndjson"), "{incidents}");
        assert!(
            incidents.contains("\"meta\":\"ns-obs-incidents\""),
            "{incidents}"
        );
        server.shutdown();
    }

    #[test]
    fn rejects_malformed_and_non_get() {
        let _l = crate::test_lock();
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.local_addr();
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GARBAGE\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
        server.shutdown();
    }

    /// Regression: a slow-loris client (connects, trickles a partial
    /// request, never finishes) must not delay other scrapes. The old
    /// inline accept loop serialized behind it; now it burns its own
    /// worker thread's deadline.
    #[test]
    fn stalled_client_does_not_block_scrapes() {
        let _l = crate::test_lock();
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.local_addr();
        let mut loris = TcpStream::connect(addr).unwrap();
        write!(loris, "GET /met").unwrap(); // incomplete head, held open
        let t0 = Instant::now();
        let ok = get(addr, "/metrics");
        let elapsed = t0.elapsed();
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(
            elapsed < Duration::from_millis(500),
            "scrape stalled behind slow-loris: {elapsed:?}"
        );
        // The loris eventually gets a 400 once its deadline expires —
        // the worker thread is reclaimed, not leaked.
        loris
            .set_read_timeout(Some(CONN_DEADLINE + Duration::from_secs(2)))
            .unwrap();
        let mut out = String::new();
        let _ = loris.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "loris response: {out:?}");
        server.shutdown();
    }
}
