//! Metrics registry: named counters, gauges, and log-bucketed
//! histograms, all lock-free on the update path.
//!
//! Handles are registered once (taking the registry lock) and then
//! shared; every subsequent update is one relaxed atomic load of the
//! global enabled flag plus one atomic RMW on the metric itself. When
//! metrics are disabled the update returns after the flag load — cheap
//! enough to leave the instrumentation compiled into per-tick hot paths
//! unconditionally.
//!
//! [`Registry::render`] emits Prometheus text exposition format 0.0.4:
//! `# HELP` / `# TYPE` per family, then one line per labeled series,
//! with histogram families expanded to cumulative `_bucket{le=...}`
//! series plus `_sum` and `_count`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enable or disable metric updates process-wide. Reads
/// ([`Counter::get`], [`Registry::render`], …) always work.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Convenience for [`set_enabled`]`(true)`.
pub fn enable() {
    set_enabled(true);
}

/// Whether metric updates are currently applied.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------

/// Monotonically increasing counter.
#[derive(Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        if is_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (queue depths, buffer occupancy).
#[derive(Clone)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        if is_enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    pub fn add(&self, d: i64) {
        if is_enabled() {
            self.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    pub fn sub(&self, d: i64) {
        self.add(-d);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Increment now, decrement when the returned guard drops — RAII for
    /// "currently active" gauges (open connections, in-flight requests)
    /// that must stay balanced across every early-return and panic path.
    pub fn hold(&self) -> GaugeGuard {
        let held = is_enabled();
        if held {
            self.value.fetch_add(1, Ordering::Relaxed);
        }
        GaugeGuard {
            gauge: self.clone(),
            held,
        }
    }
}

/// RAII handle from [`Gauge::hold`]: decrements its gauge on drop.
///
/// Balance is decided at `hold()` time, not drop time: a guard taken
/// while metrics were enabled decrements even if they were disabled in
/// between (no phantom occupants), and a guard taken while disabled
/// never decrements (no negative drift).
pub struct GaugeGuard {
    gauge: Gauge,
    held: bool,
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        if self.held {
            self.gauge.value.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

struct HistogramInner {
    /// Upper bounds (`le`), strictly increasing; an implicit `+Inf`
    /// bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (len = bounds.len() + 1),
    /// non-cumulative internally.
    buckets: Vec<AtomicU64>,
    /// Sum of observed values as f64 bits (CAS loop on update).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// Log-bucketed histogram.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    pub fn observe(&self, v: f64) {
        self.observe_n(v, 1);
    }

    /// Record `n` observations of the same value in one shot (used when
    /// a stage's elapsed time is attributed evenly across the items it
    /// processed).
    pub fn observe_n(&self, v: f64, n: u64) {
        if !is_enabled() || n == 0 || v.is_nan() {
            return;
        }
        let i = self
            .inner
            .bounds
            .partition_point(|&b| b < v)
            .min(self.inner.bounds.len());
        self.inner.buckets[i].fetch_add(n, Ordering::Relaxed);
        self.inner.count.fetch_add(n, Ordering::Relaxed);
        let add = v * n as f64;
        let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (0 ≤ q ≤ 1) from the bucket counts with
    /// log-linear interpolation inside the target bucket. Returns `None`
    /// with no observations. The estimate is bounded by the bucket
    /// resolution — good enough for latency percentiles in a bench
    /// report, not a substitute for a full digest.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.inner.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            let prev_cum = cum;
            cum += c;
            if cum >= target {
                let hi = if i < self.inner.bounds.len() {
                    self.inner.bounds[i]
                } else {
                    // +Inf bucket: report the largest finite bound.
                    return Some(*self.inner.bounds.last()?);
                };
                let lo = if i > 0 { self.inner.bounds[i - 1] } else { 0.0 };
                let frac = (target - prev_cum) as f64 / c as f64;
                return Some(if lo > 0.0 && hi > 0.0 {
                    // Log-linear: log-bucketed ladders are multiplicative.
                    (lo.ln() + (hi.ln() - lo.ln()) * frac).exp()
                } else {
                    lo + (hi - lo) * frac
                });
            }
        }
        self.inner.bounds.last().copied()
    }
}

/// `count` exponentially spaced bucket bounds starting at `start`
/// (`start, start·factor, start·factor², …`) — the standard latency
/// ladder shape.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count > 0, "bucket ladder");
    let mut v = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        v.push(b);
        b *= factor;
    }
    v
}

/// Default latency ladder: 1 µs → ~67 s in ×2 steps (27 buckets).
pub fn latency_buckets() -> Vec<f64> {
    exponential_buckets(1e-6, 2.0, 27)
}

/// Default byte-size ladder: 64 B → 4 GiB in ×4 steps (14 buckets) —
/// for payload/snapshot size histograms.
pub fn size_buckets() -> Vec<f64> {
    exponential_buckets(64.0, 4.0, 14)
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

enum FamilyKind {
    Counter,
    Gauge,
    Histogram,
}

struct Family {
    help: String,
    kind: FamilyKind,
    /// Rendered label set (`{k="v",...}` or empty) → series handle.
    series: BTreeMap<String, Series>,
}

/// A named collection of metric families. Most code uses the process
/// [`global`] registry; tests may build private ones.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// One flattened series value from [`Registry::values`]: histograms
/// contribute a `<name>_count` and `<name>_sum` entry each.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricValue {
    pub name: String,
    /// Rendered label set (`{k="v",...}` or empty).
    pub labels: String,
    pub value: f64,
}

/// The process-wide registry served by the exporter.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.sort();
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

impl Registry {
    /// Register (or fetch) a counter series. Registration is idempotent:
    /// the same `(name, labels)` always returns a handle to the same
    /// underlying value.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let mut fams = self.lock();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: FamilyKind::Counter,
            series: BTreeMap::new(),
        });
        assert!(
            matches!(fam.kind, FamilyKind::Counter),
            "metric {name} already registered with a different type"
        );
        match fam.series.entry(label_key(labels)).or_insert_with(|| {
            Series::Counter(Counter {
                value: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Series::Counter(c) => c.clone(),
            _ => unreachable!("family kind checked above"),
        }
    }

    /// Register (or fetch) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut fams = self.lock();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: FamilyKind::Gauge,
            series: BTreeMap::new(),
        });
        assert!(
            matches!(fam.kind, FamilyKind::Gauge),
            "metric {name} already registered with a different type"
        );
        match fam.series.entry(label_key(labels)).or_insert_with(|| {
            Series::Gauge(Gauge {
                value: Arc::new(AtomicI64::new(0)),
            })
        }) {
            Series::Gauge(g) => g.clone(),
            _ => unreachable!("family kind checked above"),
        }
    }

    /// Register (or fetch) a histogram series. The bucket ladder is fixed
    /// by the first registration; later calls with different `buckets`
    /// return the existing series unchanged.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[f64],
    ) -> Histogram {
        assert!(
            buckets.windows(2).all(|w| w[0] < w[1]) && !buckets.is_empty(),
            "histogram {name}: bounds must be non-empty and strictly increasing"
        );
        let mut fams = self.lock();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: FamilyKind::Histogram,
            series: BTreeMap::new(),
        });
        assert!(
            matches!(fam.kind, FamilyKind::Histogram),
            "metric {name} already registered with a different type"
        );
        match fam.series.entry(label_key(labels)).or_insert_with(|| {
            Series::Histogram(Histogram {
                inner: Arc::new(HistogramInner {
                    bounds: buckets.to_vec(),
                    buckets: (0..=buckets.len()).map(|_| AtomicU64::new(0)).collect(),
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                    count: AtomicU64::new(0),
                }),
            })
        }) {
            Series::Histogram(h) => h.clone(),
            _ => unreachable!("family kind checked above"),
        }
    }

    /// Fetch an existing histogram series without (re)registering it.
    pub fn find_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        let fams = self.lock();
        match fams.get(name)?.series.get(&label_key(labels))? {
            Series::Histogram(h) => Some(h.clone()),
            _ => None,
        }
    }

    /// Quantile estimate of a registered histogram (`None` when the
    /// series is missing or empty).
    pub fn histogram_quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        self.find_histogram(name, labels)?.quantile(q)
    }

    /// Zero every registered value (handles stay valid). For tests and
    /// between bench cells; the enabled flag is untouched.
    pub fn reset(&self) {
        let fams = self.lock();
        for fam in fams.values() {
            for s in fam.series.values() {
                match s {
                    Series::Counter(c) => c.value.store(0, Ordering::Relaxed),
                    Series::Gauge(g) => g.value.store(0, Ordering::Relaxed),
                    Series::Histogram(h) => {
                        for b in &h.inner.buckets {
                            b.store(0, Ordering::Relaxed);
                        }
                        h.inner.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
                        h.inner.count.store(0, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Flatten every registered series to `(name, labels, value)`
    /// triples in deterministic sorted order — the diffable snapshot the
    /// flight recorder uses for incident metric deltas. Histograms are
    /// summarized as `_count` and `_sum` (bucket detail stays in
    /// [`render`](Registry::render)).
    pub fn values(&self) -> Vec<MetricValue> {
        let fams = self.lock();
        let mut out = Vec::new();
        for (name, fam) in fams.iter() {
            for (labels, series) in &fam.series {
                match series {
                    Series::Counter(c) => out.push(MetricValue {
                        name: name.clone(),
                        labels: labels.clone(),
                        value: c.get() as f64,
                    }),
                    Series::Gauge(g) => out.push(MetricValue {
                        name: name.clone(),
                        labels: labels.clone(),
                        value: g.get() as f64,
                    }),
                    Series::Histogram(h) => {
                        out.push(MetricValue {
                            name: format!("{name}_count"),
                            labels: labels.clone(),
                            value: h.count() as f64,
                        });
                        out.push(MetricValue {
                            name: format!("{name}_sum"),
                            labels: labels.clone(),
                            value: h.sum(),
                        });
                    }
                }
            }
        }
        out
    }

    /// Render the whole registry in Prometheus text exposition format
    /// 0.0.4. Families and series are emitted in sorted order, so the
    /// output is deterministic given the same values.
    pub fn render(&self) -> String {
        let fams = self.lock();
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            let kind = match fam.kind {
                FamilyKind::Counter => "counter",
                FamilyKind::Gauge => "gauge",
                FamilyKind::Histogram => "histogram",
            };
            out.push_str(&format!("# HELP {name} {}\n", fam.help.replace('\n', " ")));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (labels, series) in &fam.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", g.get()));
                    }
                    Series::Histogram(h) => {
                        let mut cum = 0u64;
                        for (i, bucket) in h.inner.buckets.iter().enumerate() {
                            cum += bucket.load(Ordering::Relaxed);
                            let le = if i < h.inner.bounds.len() {
                                trim_float(h.inner.bounds[i])
                            } else {
                                "+Inf".to_string()
                            };
                            out.push_str(&format!(
                                "{name}_bucket{} {cum}\n",
                                merge_labels(labels, &le)
                            ));
                        }
                        out.push_str(&format!("{name}_sum{labels} {}\n", trim_float(h.sum())));
                        out.push_str(&format!("{name}_count{labels} {}\n", h.count()));
                    }
                }
            }
        }
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Family>> {
        self.families.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Splice `le="x"` into an already-rendered label set.
fn merge_labels(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        // labels == "{k=\"v\",...}": insert before the closing brace.
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

/// Shortest round-trippable decimal for bucket bounds and sums.
fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}") // Prometheus renders integral floats as "1.0"
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_roundtrip_and_disable() {
        let _l = crate::test_lock();
        let reg = Registry::default();
        set_enabled(true);
        let c = reg.counter("t_total", "help", &[("shard", "0")]);
        let g = reg.gauge("t_depth", "help", &[]);
        c.add(3);
        g.set(7);
        g.sub(2);
        set_enabled(false);
        c.inc();
        g.set(100);
        assert_eq!(c.get(), 3, "disabled updates are dropped");
        assert_eq!(g.get(), 5);
        // Idempotent registration returns the same underlying value.
        set_enabled(true);
        reg.counter("t_total", "help", &[("shard", "0")]).inc();
        assert_eq!(c.get(), 4);
        set_enabled(false);
    }

    #[test]
    fn gauge_guard_balances_across_enable_flips() {
        let _l = crate::test_lock();
        let reg = Registry::default();
        set_enabled(true);
        let g = reg.gauge("t_active", "help", &[]);
        {
            let _a = g.hold();
            let _b = g.hold();
            assert_eq!(g.get(), 2);
            // Disabled mid-hold: drops must still rebalance.
            set_enabled(false);
        }
        assert_eq!(g.get(), 0, "guards decrement even after disable");
        // Held while disabled: no increment, and no negative drift.
        {
            let _c = g.hold();
            assert_eq!(g.get(), 0);
        }
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_quantiles_and_render() {
        let _l = crate::test_lock();
        let reg = Registry::default();
        set_enabled(true);
        let h = reg.histogram(
            "t_seconds",
            "help",
            &[],
            &exponential_buckets(1e-3, 2.0, 10),
        );
        for _ in 0..90 {
            h.observe(2e-3);
        }
        h.observe_n(40e-3, 10);
        set_enabled(false);
        assert_eq!(h.count(), 100);
        assert!((h.sum() - (90.0 * 2e-3 + 10.0 * 40e-3)).abs() < 1e-9);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 <= 4e-3, "p50 {p50} in the 2ms bucket range");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 20e-3, "p99 {p99} reaches the 40ms observations");
        let text = reg.render();
        assert!(text.contains("# TYPE t_seconds histogram"));
        assert!(text.contains("t_seconds_count 100"));
        assert!(text.contains("le=\"+Inf\"} 100"));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "buckets cumulative: {text}");
            last = v;
        }
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let _l = crate::test_lock();
        let reg = Registry::default();
        set_enabled(true);
        reg.counter("a_total", "counts a", &[("k", "v\"q")]).inc();
        reg.gauge("b_now", "gauges b", &[]).set(-4);
        set_enabled(false);
        let text = reg.render();
        assert!(text.contains("a_total{k=\"v\\\"q\"} 1"), "{text}");
        assert!(text.contains("b_now -4"));
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.rsplit(' ').next().unwrap().parse::<f64>().is_ok(),
                "unparseable exposition line: {line}"
            );
        }
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let _l = crate::test_lock();
        let reg = Registry::default();
        set_enabled(true);
        let c = reg.counter("r_total", "h", &[]);
        c.add(9);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
        set_enabled(false);
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let reg = Registry::default();
        let h = reg.histogram("e_seconds", "h", &[], &[0.1, 1.0]);
        assert!(h.quantile(0.5).is_none());
        assert!(reg.histogram_quantile("missing", &[], 0.5).is_none());
    }
}
