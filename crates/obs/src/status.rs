//! `/statusz` composition: process-wide status plus pluggable sections.
//!
//! `ns-obs` knows nothing about the streaming engine, so the status page
//! is open for extension: any crate can [`register_section`] a named
//! closure returning a JSON *value*, and [`render`] splices every
//! section into one status object next to the built-in fields (uptime,
//! readiness, journal and recorder bookkeeping). The streaming engine
//! registers a `"stream"` section with its shard queue depths, live
//! connections, fault counters, model fingerprint, and last checkpoint.
//!
//! Readiness ([`set_ready`]) is a plain process flag: `/readyz` reports
//! 503 until the owner flips it (the engine does so once spawned).

use crate::{events, incident};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

static READY: AtomicBool = AtomicBool::new(true);

type Section = Box<dyn Fn() -> String + Send + Sync>;

fn sections() -> &'static Mutex<BTreeMap<String, Section>> {
    static SECTIONS: OnceLock<Mutex<BTreeMap<String, Section>>> = OnceLock::new();
    SECTIONS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock_sections() -> MutexGuard<'static, BTreeMap<String, Section>> {
    sections().lock().unwrap_or_else(|e| e.into_inner())
}

/// The process epoch used for the `uptime_s` field — pinned on first
/// access, so call early (the exporter and `enable_all` both do).
pub fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Seconds since [`process_epoch`] was first touched.
pub fn uptime_seconds() -> f64 {
    process_epoch().elapsed().as_secs_f64()
}

/// Flip the `/readyz` flag. Defaults to ready so a bare exporter (no
/// engine) still answers 200.
pub fn set_ready(on: bool) {
    READY.store(on, Ordering::Relaxed);
}

/// Whether `/readyz` currently answers 200.
pub fn is_ready() -> bool {
    READY.load(Ordering::Relaxed)
}

/// Install (or replace) a named status section. `f` must return a valid
/// JSON value; it is called on every `/statusz` render, so keep it to
/// atomic reads and registry lookups.
pub fn register_section(name: &str, f: impl Fn() -> String + Send + Sync + 'static) {
    lock_sections().insert(name.to_string(), Box::new(f));
}

/// Drop a section (tests; engines that shut down).
pub fn unregister_section(name: &str) {
    lock_sections().remove(name);
}

/// Render the full `/statusz` JSON object.
pub fn render() -> String {
    let ev = events::stats();
    let inc = incident::stats();
    let mut out = String::with_capacity(512);
    out.push_str(&format!(
        "{{\"uptime_s\":{:.3},\"ready\":{},\"trace_enabled\":{},\"metrics_enabled\":{}",
        uptime_seconds(),
        is_ready(),
        crate::trace::is_enabled(),
        crate::metrics::is_enabled(),
    ));
    out.push_str(&format!(
        ",\"events\":{{\"enabled\":{},\"recorded\":{},\"buffered\":{},\"dropped\":{},\"capacity\":{}}}",
        ev.enabled, ev.recorded, ev.len, ev.dropped, ev.capacity,
    ));
    out.push_str(&format!(
        ",\"incidents\":{{\"armed\":{},\"captured\":{},\"retained\":{},\"suppressed\":{}}}",
        inc.armed, inc.captured, inc.retained, inc.suppressed,
    ));
    for (name, f) in lock_sections().iter() {
        out.push_str(&format!(",\"{}\":{}", crate::trace::escape_json(name), f()));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_builtins_and_sections() {
        let _l = crate::test_lock();
        register_section("unit_test", || "{\"answer\":42}".to_string());
        let doc = render();
        unregister_section("unit_test");
        assert!(doc.starts_with('{') && doc.ends_with("}\n"), "{doc}");
        assert!(doc.contains("\"uptime_s\":"), "{doc}");
        assert!(doc.contains("\"ready\":"), "{doc}");
        assert!(doc.contains("\"events\":{"), "{doc}");
        assert!(doc.contains("\"incidents\":{"), "{doc}");
        assert!(doc.contains("\"unit_test\":{\"answer\":42}"), "{doc}");
        assert!(uptime_seconds() >= 0.0);
    }

    #[test]
    fn ready_flag_roundtrips() {
        let _l = crate::test_lock();
        assert!(is_ready(), "default ready");
        set_ready(false);
        assert!(!is_ready());
        assert!(render().contains("\"ready\":false"));
        set_ready(true);
    }
}
