//! Hierarchical span tracer.
//!
//! A span covers a scope via RAII: [`span`] (or the [`span!`](crate::span)
//! macro) pushes the name onto a thread-local stack and the returned
//! [`SpanGuard`] records the elapsed wall time on drop, keyed by the full
//! `parent/child/...` path. Aggregated per-path statistics live in a
//! global tree; the raw events additionally land in a bounded in-memory
//! log for JSONL export.
//!
//! Spans opened on different threads (e.g. inside a rayon parallel
//! region or a stream shard worker) nest under whatever is on *that*
//! thread's stack — usually the root — and aggregate by path like any
//! other span, so cross-thread stages still merge into one report line.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Raw span events kept for JSONL export; beyond this the log stops
/// growing (aggregated statistics keep counting) and the overflow is
/// reported in [`export_jsonl`]'s trailing meta line.
const EVENT_CAP: usize = 65_536;

/// Enable or disable span recording process-wide. Guards created while
/// disabled stay no-ops even if tracing is enabled before they drop.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Convenience for [`set_enabled`]`(true)`.
pub fn enable() {
    set_enabled(true);
}

/// Whether spans are currently being recorded.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Aggregated statistics of one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanStat {
    /// Completed spans at this path.
    pub count: u64,
    /// Summed wall time in nanoseconds.
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl SpanStat {
    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
    }

    /// Summed wall time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_ns as f64 * 1e-9
    }
}

/// One completed span occurrence (the JSONL export unit).
#[derive(Clone, Debug)]
struct SpanEvent {
    path: String,
    /// Start offset relative to the tracer epoch (first store access).
    start_ns: u64,
    dur_ns: u64,
    thread: String,
}

struct TraceStore {
    epoch: Instant,
    stats: BTreeMap<String, SpanStat>,
    events: Vec<SpanEvent>,
    dropped_events: u64,
}

fn store() -> &'static Mutex<TraceStore> {
    static STORE: OnceLock<Mutex<TraceStore>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(TraceStore {
            epoch: Instant::now(),
            stats: BTreeMap::new(),
            events: Vec::new(),
            dropped_events: 0,
        })
    })
}

fn lock_store() -> std::sync::MutexGuard<'static, TraceStore> {
    store().lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// Names of the spans currently open on this thread, root first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one span. Created by [`span`]; records the elapsed
/// wall time into the global span tree when dropped (if tracing was
/// enabled at creation). The guard always carries its start time, so
/// [`elapsed_seconds`](SpanGuard::elapsed_seconds) works even while
/// tracing is disabled — callers that need the duration (the bench
/// harness) read it from the same clock the tree records.
pub struct SpanGuard {
    start: Instant,
    /// `Some(depth)` when this guard pushed onto the thread stack and
    /// must record + pop on drop.
    recording: Option<usize>,
}

/// Open a span named `name`, nested under the spans already open on this
/// thread.
pub fn span(name: &'static str) -> SpanGuard {
    let recording = if is_enabled() {
        let depth = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.len()
        });
        Some(depth)
    } else {
        None
    };
    SpanGuard {
        start: Instant::now(),
        recording,
    }
}

impl SpanGuard {
    /// Wall seconds since the span opened (works with tracing disabled).
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Close the span now and return its duration in seconds.
    pub fn finish_seconds(self) -> f64 {
        let s = self.elapsed_seconds();
        drop(self);
        s
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(depth) = self.recording else {
            return;
        };
        let dur = self.start.elapsed();
        let path = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in reverse creation order within a thread, so
            // the stack top is this span; truncate defensively in case an
            // inner guard leaked across an unwind.
            let path = s[..depth.min(s.len())].join("/");
            s.truncate(depth.saturating_sub(1));
            path
        });
        let dur_ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        let mut st = lock_store();
        let start_ns = self
            .start
            .duration_since(st.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        st.stats.entry(path.clone()).or_default().record(dur_ns);
        if st.events.len() < EVENT_CAP {
            st.events.push(SpanEvent {
                path,
                start_ns,
                dur_ns,
                thread: std::thread::current()
                    .name()
                    .unwrap_or("unnamed")
                    .to_string(),
            });
        } else {
            st.dropped_events += 1;
        }
    }
}

/// Snapshot of one path's aggregated statistics.
pub fn stats(path: &str) -> Option<SpanStat> {
    lock_store().stats.get(path).copied()
}

/// Snapshot of every path's aggregated statistics, sorted by path.
pub fn all_stats() -> Vec<(String, SpanStat)> {
    lock_store()
        .stats
        .iter()
        .map(|(p, s)| (p.clone(), *s))
        .collect()
}

/// Discard all recorded spans and events (the enabled flag is
/// untouched).
pub fn reset() {
    let mut st = lock_store();
    st.stats.clear();
    st.events.clear();
    st.dropped_events = 0;
    st.epoch = Instant::now();
}

/// Render the span tree as an indented, flamegraph-style text report:
/// one line per path with call count, total time, and share of its root
/// span. Paths sort lexicographically, which interleaves children
/// directly under their parents.
pub fn report() -> String {
    let st = lock_store();
    if st.stats.is_empty() {
        return "(no spans recorded)\n".to_string();
    }
    // Root totals normalize the percentage column per top-level span.
    let mut root_total: BTreeMap<&str, u64> = BTreeMap::new();
    for (path, stat) in &st.stats {
        let root = path.split('/').next().unwrap_or(path);
        if !path.contains('/') {
            *root_total.entry(root).or_insert(0) += stat.total_ns;
        }
    }
    let width = st
        .stats
        .keys()
        .map(|p| {
            let depth = p.matches('/').count();
            depth * 2 + p.rsplit('/').next().unwrap_or(p).len()
        })
        .max()
        .unwrap_or(20)
        .max(20);
    let mut out = String::new();
    for (path, stat) in &st.stats {
        let depth = path.matches('/').count();
        let leaf = path.rsplit('/').next().unwrap_or(path);
        let root = path.split('/').next().unwrap_or(path);
        let total = stat.total_seconds();
        let share = match root_total.get(root) {
            Some(&r) if r > 0 => stat.total_ns as f64 / r as f64 * 100.0,
            _ => 100.0,
        };
        let avg = total / stat.count.max(1) as f64;
        out.push_str(&format!(
            "{:indent$}{:<width$} {:>8} calls {:>11} total {:>11} avg {:>6.1}%\n",
            "",
            leaf,
            stat.count,
            format_seconds(total),
            format_seconds(avg),
            share,
            indent = depth * 2,
            width = width.saturating_sub(depth * 2).max(1),
        ));
    }
    if st.dropped_events > 0 {
        out.push_str(&format!(
            "({} span events beyond the {} event cap kept only as aggregates)\n",
            st.dropped_events, EVENT_CAP
        ));
    }
    out
}

/// Export the raw span events as JSON Lines: one object per completed
/// span with `path`, `start_ns` (offset from the tracer epoch),
/// `dur_ns`, and `thread`, followed by one meta object with the dropped
/// count. Events are in completion order.
pub fn export_jsonl() -> String {
    let st = lock_store();
    let mut out = String::new();
    for e in &st.events {
        out.push_str(&format!(
            "{{\"path\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"thread\":\"{}\"}}\n",
            escape_json(&e.path),
            e.start_ns,
            e.dur_ns,
            escape_json(&e.thread),
        ));
    }
    out.push_str(&format!(
        "{{\"meta\":\"ns-obs-trace\",\"events\":{},\"dropped\":{}}}\n",
        st.events.len(),
        st.dropped_events
    ));
    out
}

/// Export the raw span events as a Chrome-trace / Perfetto JSON array,
/// directly loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Each completed span becomes one complete (`"ph":"X"`) event with
/// `ts`/`dur` in microseconds relative to the tracer epoch. Threads are
/// mapped to stable integer `tid`s in order of first appearance and
/// named via `thread_name` metadata (`"ph":"M"`) events, so shard
/// workers show up as labeled rows in the viewer.
pub fn export_chrome() -> String {
    let st = lock_store();
    let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
    let mut next_tid = 1u64;
    let mut body = String::new();
    for e in &st.events {
        let tid = *tids.entry(e.thread.as_str()).or_insert_with(|| {
            let t = next_tid;
            next_tid += 1;
            t
        });
        if !body.is_empty() {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{\"path\":\"{}\"}}}}",
            escape_json(e.path.rsplit('/').next().unwrap_or(&e.path)),
            e.start_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
            escape_json(&e.path),
        ));
    }
    let mut meta = String::new();
    for (thread, tid) in &tids {
        if !meta.is_empty() {
            meta.push_str(",\n");
        }
        meta.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            escape_json(thread),
        ));
    }
    let mut out = String::with_capacity(body.len() + meta.len() + 16);
    out.push_str("[\n");
    out.push_str(&meta);
    if !meta.is_empty() && !body.is_empty() {
        out.push_str(",\n");
    }
    out.push_str(&body);
    out.push_str("\n]\n");
    out
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Escape a string for embedding inside a JSON string literal — shared
/// by the trace, event, and incident exporters (the crate hand-rolls
/// its JSON to stay dependency-free).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing_but_still_time() {
        let _l = crate::test_lock();
        set_enabled(false);
        reset();
        let g = span("ghost");
        assert!(g.elapsed_seconds() >= 0.0);
        drop(g);
        assert!(stats("ghost").is_none());
    }

    #[test]
    fn nested_spans_build_paths_and_aggregate() {
        let _l = crate::test_lock();
        set_enabled(true);
        reset();
        for _ in 0..3 {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        set_enabled(false);
        let outer = stats("outer").expect("outer recorded");
        let inner = stats("outer/inner").expect("inner nested under outer");
        assert_eq!(outer.count, 3);
        assert_eq!(inner.count, 3);
        assert!(outer.total_ns >= inner.total_ns, "parent covers child");
        assert!(stats("inner").is_none(), "inner never appears as a root");
        let rep = report();
        assert!(rep.contains("outer"), "{rep}");
        assert!(rep.contains("inner"), "{rep}");
    }

    #[test]
    fn guards_survive_out_of_order_drop() {
        let _l = crate::test_lock();
        set_enabled(true);
        reset();
        let a = span("a");
        let b = span("b");
        // Dropping the parent first must not corrupt the stack.
        drop(a);
        drop(b);
        set_enabled(false);
        assert!(stats("a").is_some());
        // b was recorded under whatever prefix was left; no panic is the
        // contract here.
        assert_eq!(all_stats().iter().map(|(_, s)| s.count).sum::<u64>(), 2);
    }

    #[test]
    fn jsonl_export_is_parseable_lines() {
        let _l = crate::test_lock();
        set_enabled(true);
        reset();
        {
            let _g = span("export\"me");
        }
        set_enabled(false);
        let out = export_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "one event + one meta line: {out}");
        assert!(lines[0].contains("\\\"me"), "quote escaped: {}", lines[0]);
        assert!(lines[1].contains("\"dropped\":0"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn chrome_export_is_a_viewer_loadable_array() {
        let _l = crate::test_lock();
        set_enabled(true);
        reset();
        let t = std::thread::Builder::new()
            .name("chrome-test-worker".into())
            .spawn(|| {
                let _g = span("worker_stage");
            })
            .unwrap();
        {
            let _outer = span("replay");
            let _inner = span("score");
        }
        t.join().unwrap();
        set_enabled(false);
        let out = export_chrome();
        assert!(out.starts_with("[\n") && out.ends_with("\n]\n"), "{out}");
        assert!(out.contains("\"ph\":\"X\""), "{out}");
        assert!(out.contains("\"ph\":\"M\""), "thread metadata: {out}");
        assert!(out.contains("\"name\":\"chrome-test-worker\""), "{out}");
        // The span path rides in args; the display name is the leaf.
        assert!(out.contains("\"name\":\"score\""), "{out}");
        assert!(out.contains("\"path\":\"replay/score\""), "{out}");
        // Same thread → same tid for nested spans.
        let tid_of = |needle: &str| -> String {
            let line = out.lines().find(|l| l.contains(needle)).unwrap();
            let at = line.find("\"tid\":").unwrap() + 6;
            line[at..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect()
        };
        assert_eq!(tid_of("\"name\":\"replay\""), tid_of("\"name\":\"score\""));
        // Every line inside the array is an object (valid JSON shape).
        for l in out.lines().filter(|l| l.starts_with('{')) {
            assert!(l.ends_with('}') || l.ends_with("},"), "{l}");
        }
    }

    #[test]
    fn threads_record_independent_roots() {
        let _l = crate::test_lock();
        set_enabled(true);
        reset();
        let t = std::thread::Builder::new()
            .name("obs-test-worker".into())
            .spawn(|| {
                let _g = span("worker_side");
            })
            .unwrap();
        {
            let _g = span("main_side");
        }
        t.join().unwrap();
        set_enabled(false);
        assert!(stats("worker_side").is_some());
        assert!(stats("main_side").is_some());
        assert!(export_jsonl().contains("obs-test-worker"));
    }

    #[test]
    fn finish_seconds_records_and_returns() {
        let _l = crate::test_lock();
        set_enabled(true);
        reset();
        let s = span("finished").finish_seconds();
        set_enabled(false);
        assert!(s >= 0.0);
        assert_eq!(stats("finished").map(|s| s.count), Some(1));
    }
}
