//! Flight-recorder incident capture.
//!
//! When something operationally interesting fires — a quarantine, a wire
//! error burst, a Degraded-rate spike, a checkpoint failure — the owner
//! of that signal calls [`capture`]. If the recorder is **armed** and the
//! trigger is not inside its debounce window, the capture snapshots:
//!
//! * the recent [`events`] ring contents (bounded to
//!   [`MAX_EVENTS_PER_INCIDENT`] records),
//! * deltas of every registered metric since the previous capture
//!   (absolute values on the first capture),
//! * the current [`crate::trace::report`],
//! * the process context string installed via [`set_context`] (the
//!   streaming engine stores its config + model fingerprint there).
//!
//! Storage is bounded: the newest [`MAX_INCIDENTS`] incidents are kept,
//! rendered on demand as JSONL by [`render_jsonl`] and served at
//! `/debug/incidents`. Like the rest of the crate everything defaults
//! off — a disarmed [`capture`] is one relaxed atomic load — and capture
//! only ever *reads* pipeline-adjacent state, so arming it cannot change
//! a verdict bit.

use crate::events::{self, EventRecord};
use crate::metrics::{self, MetricValue};
use crate::trace;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

static ARMED: AtomicBool = AtomicBool::new(false);

/// Newest incidents retained in memory.
pub const MAX_INCIDENTS: usize = 8;
/// Journal records snapshotted into one incident.
pub const MAX_EVENTS_PER_INCIDENT: usize = 512;
/// Default per-trigger debounce window.
pub const DEFAULT_MIN_INTERVAL: Duration = Duration::from_secs(30);

/// Arm or disarm incident capture process-wide.
pub fn set_armed(on: bool) {
    ARMED.store(on, Ordering::Relaxed);
}

/// Whether triggers currently capture incidents.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// One captured incident: the flight-recorder dump unit.
#[derive(Clone, Debug)]
pub struct Incident {
    /// Process-monotonic capture id (0, 1, …).
    pub id: u64,
    /// Which predicate fired (`"quarantine"`, `"wire_error_burst"`, …).
    pub trigger: &'static str,
    /// Human-oriented one-liner from the trigger site.
    pub reason: String,
    /// Monotonic nanoseconds since the event-journal epoch.
    pub t_ns: u64,
    /// Wall-clock capture time (milliseconds since the Unix epoch).
    pub unix_ms: u64,
    /// Recent journal records, oldest first.
    pub events: Vec<EventRecord>,
    /// Per-series metric movement since the previous capture (`value` is
    /// the delta; series that did not move are omitted).
    pub metrics_delta: Vec<MetricValue>,
    /// `trace::report()` at capture time.
    pub span_report: String,
    /// Raw JSON context installed via [`set_context`] (`{}` if unset).
    pub context: String,
}

impl Incident {
    /// Render as one JSON object (no trailing newline) — the JSONL unit
    /// served by `/debug/incidents`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"id\":{},\"trigger\":\"{}\",\"reason\":\"{}\",\"t_ns\":{},\"unix_ms\":{}",
            self.id,
            self.trigger,
            trace::escape_json(&self.reason),
            self.t_ns,
            self.unix_ms,
        ));
        out.push_str(",\"context\":");
        if self.context.trim().is_empty() {
            out.push_str("{}");
        } else {
            out.push_str(&self.context);
        }
        out.push_str(",\"metrics_delta\":[");
        for (i, m) in self.metrics_delta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"labels\":\"{}\",\"delta\":{}}}",
                trace::escape_json(&m.name),
                trace::escape_json(&m.labels),
                m.value,
            ));
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str(&format!(
            "],\"span_report\":\"{}\"}}",
            trace::escape_json(&self.span_report)
        ));
        out
    }
}

struct Recorder {
    incidents: Vec<Incident>,
    next_id: u64,
    suppressed: u64,
    min_interval: Duration,
    last_fire: BTreeMap<&'static str, Instant>,
    /// `(name, labels) → value` at the previous capture; deltas diff
    /// against this.
    baseline: BTreeMap<(String, String), f64>,
    context: String,
}

fn recorder() -> &'static Mutex<Recorder> {
    static RECORDER: OnceLock<Mutex<Recorder>> = OnceLock::new();
    RECORDER.get_or_init(|| {
        Mutex::new(Recorder {
            incidents: Vec::new(),
            next_id: 0,
            suppressed: 0,
            min_interval: DEFAULT_MIN_INTERVAL,
            last_fire: BTreeMap::new(),
            baseline: BTreeMap::new(),
            context: String::new(),
        })
    })
}

fn lock_recorder() -> MutexGuard<'static, Recorder> {
    recorder().lock().unwrap_or_else(|e| e.into_inner())
}

/// Install the process context embedded verbatim in every dump. Must be
/// a valid JSON value (the engine stores its config + model fingerprint
/// as an object).
pub fn set_context(json: String) {
    lock_recorder().context = json;
}

/// Override the per-trigger debounce window (tests use `ZERO`).
pub fn set_min_interval(d: Duration) {
    lock_recorder().min_interval = d;
}

/// Fire `trigger`. Returns `true` if an incident was captured, `false`
/// when disarmed or debounced. Disarmed cost: one relaxed atomic load.
pub fn capture(trigger: &'static str, reason: &str) -> bool {
    if !is_armed() {
        return false;
    }
    // Debounce bookkeeping first, holding only the recorder lock.
    {
        let mut rec = lock_recorder();
        let now = Instant::now();
        if let Some(&prev) = rec.last_fire.get(trigger) {
            if now.duration_since(prev) < rec.min_interval {
                rec.suppressed += 1;
                return false;
            }
        }
        rec.last_fire.insert(trigger, now);
    }
    // Snapshot the other subsystems without holding our lock: each takes
    // (and releases) its own, so there is no lock-order coupling.
    let events = events::recent(MAX_EVENTS_PER_INCIDENT);
    let t_ns = events.last().map(|e| e.t_ns).unwrap_or(0);
    let values = metrics::global().values();
    let span_report = trace::report();
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0);

    let mut rec = lock_recorder();
    let mut metrics_delta = Vec::new();
    for v in &values {
        let key = (v.name.clone(), v.labels.clone());
        let prev = rec.baseline.get(&key).copied().unwrap_or(0.0);
        let delta = v.value - prev;
        if delta != 0.0 {
            metrics_delta.push(MetricValue {
                name: v.name.clone(),
                labels: v.labels.clone(),
                value: delta,
            });
        }
        rec.baseline.insert(key, v.value);
    }
    let id = rec.next_id;
    rec.next_id += 1;
    let incident = Incident {
        id,
        trigger,
        reason: reason.to_string(),
        t_ns,
        unix_ms,
        events,
        metrics_delta,
        span_report,
        context: rec.context.clone(),
    };
    if rec.incidents.len() == MAX_INCIDENTS {
        rec.incidents.remove(0);
    }
    rec.incidents.push(incident);
    drop(rec);
    // The capture itself goes on the tape, so later incidents show it.
    events::record(events::EventKind::Incident, trigger, -1, -1, id, 0);
    true
}

/// Clone of the retained incidents, oldest first.
pub fn incidents() -> Vec<Incident> {
    lock_recorder().incidents.clone()
}

/// Capture bookkeeping for `/statusz`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecorderStats {
    /// Incidents ever captured (== the next id).
    pub captured: u64,
    /// Incidents currently retained.
    pub retained: usize,
    /// Trigger firings swallowed by the debounce window.
    pub suppressed: u64,
    pub armed: bool,
}

/// Snapshot the recorder bookkeeping.
pub fn stats() -> RecorderStats {
    let rec = lock_recorder();
    RecorderStats {
        captured: rec.next_id,
        retained: rec.incidents.len(),
        suppressed: rec.suppressed,
        armed: is_armed(),
    }
}

/// Render every retained incident as JSON Lines, oldest first, followed
/// by one meta line with the capture totals.
pub fn render_jsonl() -> String {
    let rec = lock_recorder();
    let mut out = String::new();
    for i in &rec.incidents {
        out.push_str(&i.to_json());
        out.push('\n');
    }
    out.push_str(&format!(
        "{{\"meta\":\"ns-obs-incidents\",\"captured\":{},\"retained\":{},\"suppressed\":{}}}\n",
        rec.next_id,
        rec.incidents.len(),
        rec.suppressed,
    ));
    out
}

/// Discard incidents, debounce history, the metrics baseline, and the
/// context (armed flag and interval untouched).
pub fn reset() {
    let mut rec = lock_recorder();
    rec.incidents.clear();
    rec.next_id = 0;
    rec.suppressed = 0;
    rec.last_fire.clear();
    rec.baseline.clear();
    rec.context.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_capture_is_a_noop() {
        let _l = crate::test_lock();
        set_armed(false);
        reset();
        assert!(!capture("quarantine", "node 3 panicked"));
        assert_eq!(stats().captured, 0);
    }

    #[test]
    fn capture_snapshots_events_metrics_and_context() {
        let _l = crate::test_lock();
        reset();
        events::set_enabled(true);
        events::reset();
        metrics::set_enabled(true);
        metrics::global()
            .counter("incident_test_total", "Incident smoke counter.", &[])
            .add(3);
        events::record(events::EventKind::Quarantine, "", 1, 9, 40, 0);
        set_armed(true);
        set_min_interval(Duration::ZERO);
        set_context("{\"fingerprint\":\"abc\"}".to_string());
        assert!(capture("quarantine", "node 9 panicked at step 40"));
        metrics::set_enabled(false);
        events::set_enabled(false);
        set_armed(false);

        let all = incidents();
        assert_eq!(all.len(), 1);
        let inc = &all[0];
        assert_eq!(inc.id, 0);
        assert_eq!(inc.trigger, "quarantine");
        assert!(inc.reason.contains("node 9"));
        assert!(inc
            .events
            .iter()
            .any(|e| e.kind == events::EventKind::Quarantine && e.node == 9));
        assert!(inc
            .metrics_delta
            .iter()
            .any(|m| m.name == "incident_test_total" && m.value == 3.0));
        assert!(inc.context.contains("fingerprint"));
        let line = inc.to_json();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"context\":{\"fingerprint\":\"abc\"}"));
        let dump = render_jsonl();
        assert!(dump.lines().count() >= 2, "{dump}");
        assert!(dump.contains("\"meta\":\"ns-obs-incidents\""));
        reset();
        events::reset();
    }

    #[test]
    fn debounce_suppresses_repeat_triggers_and_deltas_reset() {
        let _l = crate::test_lock();
        reset();
        set_armed(true);
        set_min_interval(Duration::from_secs(3600));
        assert!(capture("wire_error_burst", "first"));
        assert!(!capture("wire_error_burst", "second"), "debounced");
        // A different trigger is independent.
        assert!(capture("checkpoint_failure", "other"));
        let s = stats();
        assert_eq!(s.captured, 2);
        assert_eq!(s.suppressed, 1);
        // Second capture saw no metric movement → empty delta.
        assert!(incidents()[1].metrics_delta.is_empty());
        set_armed(false);
        set_min_interval(DEFAULT_MIN_INTERVAL);
        reset();
    }

    #[test]
    fn storage_is_bounded_to_newest() {
        let _l = crate::test_lock();
        reset();
        set_armed(true);
        set_min_interval(Duration::ZERO);
        for _ in 0..(MAX_INCIDENTS + 3) {
            assert!(capture("quarantine", "again"));
        }
        let all = incidents();
        assert_eq!(all.len(), MAX_INCIDENTS);
        assert_eq!(all.last().unwrap().id, (MAX_INCIDENTS + 2) as u64);
        set_armed(false);
        set_min_interval(DEFAULT_MIN_INTERVAL);
        reset();
    }
}
