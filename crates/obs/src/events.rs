//! Bounded structured event journal — the flight recorder's tape.
//!
//! A process-global ring of fixed-size [`EventRecord`]s. Producers call
//! [`record`] from hot paths (shard workers, connection threads); each
//! record carries a process-monotonic sequence number, a monotonic
//! timestamp relative to the journal epoch, a typed [`EventKind`], a
//! `&'static str` detail label, shard / node attribution, and two
//! free-form `u64` payload slots. When the ring is full the oldest
//! record is overwritten and a dropped counter advances, so memory is
//! bounded regardless of event rate.
//!
//! The journal obeys the crate-wide no-op-when-disabled contract: it
//! starts **disabled**, and a disabled [`record`] is exactly one relaxed
//! atomic load — no lock, no allocation, no timestamp. Enabled appends
//! take one short `Mutex` critical section (push + maybe pop, no
//! allocation in steady state) — cheap relative to the work that emits
//! events (verdict batches, faults, connection lifecycle), and never on
//! the data path itself, so enabling the journal cannot change a verdict
//! bit (`tests/obs_equivalence.rs` pins this).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Default ring capacity: at ~64 bytes per record this is ~256 KiB of
/// tape, enough for several seconds of steady-state traffic around an
/// incident while staying irrelevant next to model memory.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Enable or disable event recording process-wide. Reads ([`recent`],
/// [`stats`], …) always work.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether events are currently being recorded.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// What happened. Kinds are closed-set and fixed-size on purpose: the
/// journal never stores per-event strings beyond `&'static` labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A verdict left the engine (`a` = step, `b` = verdict discriminant).
    Verdict,
    /// A fault counter advanced (`label` = fault class, `a` = delta,
    /// `b` = new total).
    FaultDetected,
    /// A node was quarantined after a scoring panic (`a` = step).
    Quarantine,
    /// A blackout gap was detected on a node (`a` = gap length in steps).
    Blackout,
    /// A blacked-out node resynced (`a` = resync step).
    Resync,
    /// An engine checkpoint completed or failed (`label` = "ok"/"failed",
    /// `a` = snapshot bytes, `b` = nodes captured).
    Checkpoint,
    /// An engine restored from a snapshot (`a` = nodes, `b` = shards).
    Restore,
    /// A restore changed the shard count (`a` = from, `b` = to).
    Reshard,
    /// A wire connection opened (`node` = connection id).
    ConnOpen,
    /// A wire connection closed (`label` = exit class).
    ConnClose,
    /// A wire frame failed to decode or violated the protocol
    /// (`label` = error class).
    ProtocolError,
    /// A verdict subscriber attached (`node` = connection id).
    SubscriberJoin,
    /// The flight recorder captured an incident (`label` = trigger).
    Incident,
    /// The engine clamped per-shard kernel parallelism to avoid
    /// oversubscribing `shards × pool threads` past the machine
    /// (`a` = uncapped kernel width, `b` = clamped width).
    PoolClamp,
}

impl EventKind {
    /// Stable lowercase name used in JSON exports and filters.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Verdict => "verdict",
            EventKind::FaultDetected => "fault_detected",
            EventKind::Quarantine => "quarantine",
            EventKind::Blackout => "blackout",
            EventKind::Resync => "resync",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Restore => "restore",
            EventKind::Reshard => "reshard",
            EventKind::ConnOpen => "conn_open",
            EventKind::ConnClose => "conn_close",
            EventKind::ProtocolError => "protocol_error",
            EventKind::SubscriberJoin => "subscriber_join",
            EventKind::Incident => "incident",
            EventKind::PoolClamp => "pool_clamp",
        }
    }

    /// Every kind, for exhaustive tests and docs.
    pub const ALL: [EventKind; 14] = [
        EventKind::Verdict,
        EventKind::FaultDetected,
        EventKind::Quarantine,
        EventKind::Blackout,
        EventKind::Resync,
        EventKind::Checkpoint,
        EventKind::Restore,
        EventKind::Reshard,
        EventKind::ConnOpen,
        EventKind::ConnClose,
        EventKind::ProtocolError,
        EventKind::SubscriberJoin,
        EventKind::Incident,
        EventKind::PoolClamp,
    ];
}

/// One fixed-size journal record. `Copy`, no heap payload: the detail
/// label is `&'static`, attribution is numeric, and kind-specific data
/// rides in the `a`/`b` slots (see [`EventKind`] for their meaning).
#[derive(Clone, Copy, Debug)]
pub struct EventRecord {
    /// Process-monotonic sequence number (gaps mean overwritten tape).
    pub seq: u64,
    /// Monotonic nanoseconds since the journal epoch.
    pub t_ns: u64,
    pub kind: EventKind,
    /// Kind-specific detail tag (fault class, wire error class, …) or "".
    pub label: &'static str,
    /// Owning shard, or `-1` when not shard-scoped.
    pub shard: i64,
    /// Node id — or connection id for wire events — or `-1`.
    pub node: i64,
    /// First kind-specific payload slot.
    pub a: u64,
    /// Second kind-specific payload slot.
    pub b: u64,
}

impl EventRecord {
    /// Render as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"t_ns\":{},\"kind\":\"{}\",\"label\":\"{}\",\"shard\":{},\"node\":{},\"a\":{},\"b\":{}}}",
            self.seq,
            self.t_ns,
            self.kind.label(),
            self.label,
            self.shard,
            self.node,
            self.a,
            self.b,
        )
    }
}

struct Journal {
    ring: VecDeque<EventRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    epoch: Instant,
}

fn journal() -> &'static Mutex<Journal> {
    static JOURNAL: OnceLock<Mutex<Journal>> = OnceLock::new();
    JOURNAL.get_or_init(|| {
        Mutex::new(Journal {
            ring: VecDeque::with_capacity(DEFAULT_CAPACITY),
            capacity: DEFAULT_CAPACITY,
            next_seq: 0,
            dropped: 0,
            epoch: Instant::now(),
        })
    })
}

fn lock_journal() -> MutexGuard<'static, Journal> {
    journal().lock().unwrap_or_else(|e| e.into_inner())
}

/// Append one record. Disabled: one relaxed atomic load, nothing else.
pub fn record(kind: EventKind, label: &'static str, shard: i64, node: i64, a: u64, b: u64) {
    if !is_enabled() {
        return;
    }
    let mut j = lock_journal();
    let t_ns = j.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let seq = j.next_seq;
    j.next_seq += 1;
    if j.ring.len() == j.capacity {
        j.ring.pop_front();
        j.dropped += 1;
    }
    j.ring.push_back(EventRecord {
        seq,
        t_ns,
        kind,
        label,
        shard,
        node,
        a,
        b,
    });
}

/// The newest `n` records, oldest first (all of them when `n` exceeds
/// the ring occupancy).
pub fn recent(n: usize) -> Vec<EventRecord> {
    let j = lock_journal();
    let skip = j.ring.len().saturating_sub(n);
    j.ring.iter().skip(skip).copied().collect()
}

/// Journal occupancy and bookkeeping, for `/statusz` and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalStats {
    /// Total records ever appended (== the next sequence number).
    pub recorded: u64,
    /// Records currently on the ring.
    pub len: usize,
    /// Records overwritten by ring wrap-around.
    pub dropped: u64,
    pub capacity: usize,
    pub enabled: bool,
}

/// Snapshot the journal bookkeeping.
pub fn stats() -> JournalStats {
    let j = lock_journal();
    JournalStats {
        recorded: j.next_seq,
        len: j.ring.len(),
        dropped: j.dropped,
        capacity: j.capacity,
        enabled: is_enabled(),
    }
}

/// Resize the ring (trimming the oldest records if shrinking). Intended
/// for setup, not hot paths.
pub fn set_capacity(capacity: usize) {
    let capacity = capacity.max(1);
    let mut j = lock_journal();
    while j.ring.len() > capacity {
        j.ring.pop_front();
        j.dropped += 1;
    }
    j.capacity = capacity;
}

/// Discard all records and restart sequence numbers and the epoch (the
/// enabled flag and capacity are untouched).
pub fn reset() {
    let mut j = lock_journal();
    j.ring.clear();
    j.next_seq = 0;
    j.dropped = 0;
    j.epoch = Instant::now();
}

/// Render the newest `n` records as one JSON document:
/// `{"recorded":…,"dropped":…,"events":[…]}` with events oldest first.
pub fn render_json(n: usize) -> String {
    let events = recent(n);
    let s = stats();
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str(&format!(
        "{{\"recorded\":{},\"dropped\":{},\"events\":[",
        s.recorded, s.dropped
    ));
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e.to_json());
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_record_is_a_noop() {
        let _l = crate::test_lock();
        set_enabled(false);
        reset();
        record(EventKind::Verdict, "", 0, 1, 2, 3);
        let s = stats();
        assert_eq!(s.recorded, 0);
        assert_eq!(s.len, 0);
        assert!(!s.enabled);
    }

    #[test]
    fn records_carry_monotonic_seq_and_time() {
        let _l = crate::test_lock();
        set_enabled(true);
        reset();
        record(EventKind::ConnOpen, "", -1, 7, 0, 0);
        record(EventKind::Quarantine, "", 2, 41, 99, 0);
        set_enabled(false);
        let got = recent(10);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, 0);
        assert_eq!(got[1].seq, 1);
        assert!(got[1].t_ns >= got[0].t_ns, "monotonic timestamps");
        assert_eq!(got[1].kind, EventKind::Quarantine);
        assert_eq!(got[1].shard, 2);
        assert_eq!(got[1].node, 41);
        assert_eq!(got[1].a, 99);
    }

    #[test]
    fn ring_bounds_memory_and_counts_drops() {
        let _l = crate::test_lock();
        set_enabled(true);
        reset();
        set_capacity(8);
        for i in 0..20 {
            record(EventKind::Verdict, "", 0, i, 0, 0);
        }
        set_enabled(false);
        let s = stats();
        assert_eq!(s.len, 8);
        assert_eq!(s.recorded, 20);
        assert_eq!(s.dropped, 12);
        let got = recent(100);
        assert_eq!(got.first().unwrap().seq, 12, "oldest survivor");
        assert_eq!(got.last().unwrap().seq, 19);
        set_capacity(DEFAULT_CAPACITY);
        reset();
    }

    #[test]
    fn json_export_is_well_formed() {
        let _l = crate::test_lock();
        set_enabled(true);
        reset();
        record(EventKind::ProtocolError, "bad_checksum", -1, 3, 1, 0);
        set_enabled(false);
        let doc = render_json(10);
        assert!(doc.starts_with('{') && doc.ends_with("]}\n"), "{doc}");
        assert!(doc.contains("\"kind\":\"protocol_error\""), "{doc}");
        assert!(doc.contains("\"label\":\"bad_checksum\""), "{doc}");
        assert!(doc.contains("\"recorded\":1"), "{doc}");
        for k in EventKind::ALL {
            assert!(!k.label().is_empty());
        }
    }
}
