//! Statistical-domain feature primitives not already provided by
//! [`ns_linalg::stats`].

use ns_linalg::stats;

/// Fraction of samples strictly above the mean.
pub fn count_above_mean(x: &[f64]) -> f64 {
    count_above_mean_with(x, stats::mean(x))
}

/// [`count_above_mean`] with the mean precomputed (bit-identical).
pub fn count_above_mean_with(x: &[f64], m: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().filter(|&&v| v > m).count() as f64 / x.len() as f64
}

/// Fraction of samples strictly below the mean.
pub fn count_below_mean(x: &[f64]) -> f64 {
    count_below_mean_with(x, stats::mean(x))
}

/// [`count_below_mean`] with the mean precomputed (bit-identical).
pub fn count_below_mean_with(x: &[f64], m: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().filter(|&&v| v < m).count() as f64 / x.len() as f64
}

/// Mean absolute deviation from the mean.
pub fn mean_abs_deviation(x: &[f64]) -> f64 {
    mean_abs_deviation_with(x, stats::mean(x))
}

/// [`mean_abs_deviation`] with the mean precomputed (bit-identical).
pub fn mean_abs_deviation_with(x: &[f64], m: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().map(|v| (v - m).abs()).sum::<f64>() / x.len() as f64
}

/// Absolute energy: `Σ x²`.
pub fn abs_energy(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Coefficient of variation `σ/μ`; 0 when the mean is (near) zero.
pub fn coefficient_of_variation(x: &[f64]) -> f64 {
    coefficient_of_variation_with(stats::mean(x), stats::std_dev(x))
}

/// [`coefficient_of_variation`] from precomputed moments (bit-identical:
/// the standalone form only touches the std after the mean guard, so the
/// value is a pure function of `(m, s)`).
pub fn coefficient_of_variation_with(m: f64, s: f64) -> f64 {
    if m.abs() < 1e-15 {
        return 0.0;
    }
    s / m.abs()
}

/// Fraction of samples landing in histogram bin `i` of `k` equal-width
/// bins between min and max. Constant series put all mass in bin 0.
pub fn hist_bin_fraction(x: &[f64], i: usize, k: usize) -> f64 {
    if x.is_empty() || k == 0 || i >= k {
        return 0.0;
    }
    let lo = stats::min(x);
    let hi = stats::max(x);
    if hi - lo < 1e-24 {
        return if i == 0 { 1.0 } else { 0.0 };
    }
    let mut count = 0usize;
    for &v in x {
        let mut b = ((v - lo) / (hi - lo) * k as f64) as usize;
        if b >= k {
            b = k - 1;
        }
        if b == i {
            count += 1;
        }
    }
    count as f64 / x.len() as f64
}

/// The bin-`i` fraction of [`hist_bin_fraction`] from precomputed counts.
/// Only valid when the standalone function would take the counting path
/// (non-empty data, finite range ≥ 1e-24); callers keep the degenerate
/// fallbacks.
pub fn hist_bin_fraction_from_counts(counts: &[usize], i: usize, n: usize) -> f64 {
    if n == 0 || i >= counts.len() {
        return 0.0;
    }
    counts[i] as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn above_below_mean_partition() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(count_above_mean(&x), 0.5);
        assert_eq!(count_below_mean(&x), 0.5);
        // Values equal to the mean count in neither.
        let y = [1.0, 2.0, 3.0];
        assert!((count_above_mean(&y) + count_below_mean(&y) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mad_energy_cv() {
        let x = [1.0, 3.0];
        assert_eq!(mean_abs_deviation(&x), 1.0);
        assert_eq!(abs_energy(&x), 10.0);
        assert!((coefficient_of_variation(&x) - 0.5).abs() < 1e-12);
        assert_eq!(coefficient_of_variation(&[-1.0, 1.0]), 0.0); // zero mean
    }

    #[test]
    fn histogram_fractions_partition() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s: f64 = (0..10).map(|i| hist_bin_fraction(&x, i, 10)).sum();
        assert!((s - 1.0).abs() < 1e-12);
        // Uniform data → each bin ≈ 0.1.
        assert!((hist_bin_fraction(&x, 4, 10) - 0.1).abs() < 0.02);
        // Constant series.
        assert_eq!(hist_bin_fraction(&[7.0; 5], 0, 10), 1.0);
        assert_eq!(hist_bin_fraction(&[7.0; 5], 3, 10), 0.0);
    }
}
