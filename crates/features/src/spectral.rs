//! Spectral-domain feature primitives, evaluated over a one-sided power
//! spectrum `(freqs, power)` as produced by [`crate::fft::power_spectrum`].

/// Spectral centroid: power-weighted mean frequency (0 for empty spectra).
pub fn centroid(freqs: &[f64], power: &[f64]) -> f64 {
    centroid_with(freqs, power, power.iter().sum())
}

/// [`centroid`] with the total power precomputed (bit-identical).
pub fn centroid_with(freqs: &[f64], power: &[f64], total: f64) -> f64 {
    if total < 1e-24 {
        return 0.0;
    }
    freqs.iter().zip(power).map(|(f, p)| f * p).sum::<f64>() / total
}

/// Spectral spread: power-weighted standard deviation around the centroid.
pub fn spread(freqs: &[f64], power: &[f64]) -> f64 {
    let total: f64 = power.iter().sum();
    if total < 1e-24 {
        return 0.0;
    }
    spread_with(freqs, power, centroid(freqs, power), total)
}

/// [`spread`] with the centroid and total power precomputed
/// (bit-identical).
pub fn spread_with(freqs: &[f64], power: &[f64], c: f64, total: f64) -> f64 {
    if total < 1e-24 {
        return 0.0;
    }
    (freqs
        .iter()
        .zip(power)
        .map(|(f, p)| (f - c) * (f - c) * p)
        .sum::<f64>()
        / total)
        .sqrt()
}

/// Spectral skewness (third standardized moment of the spectrum).
pub fn skewness(freqs: &[f64], power: &[f64]) -> f64 {
    let s = spread(freqs, power);
    let total: f64 = power.iter().sum();
    if s < 1e-15 || total < 1e-24 {
        return 0.0;
    }
    skewness_with(freqs, power, centroid(freqs, power), s, total)
}

/// [`skewness`] with the centroid, spread and total power precomputed
/// (bit-identical).
pub fn skewness_with(freqs: &[f64], power: &[f64], c: f64, s: f64, total: f64) -> f64 {
    if s < 1e-15 || total < 1e-24 {
        return 0.0;
    }
    freqs
        .iter()
        .zip(power)
        .map(|(f, p)| ((f - c) / s).powi(3) * p)
        .sum::<f64>()
        / total
}

/// Spectral kurtosis (fourth standardized moment; not excess).
pub fn kurtosis(freqs: &[f64], power: &[f64]) -> f64 {
    let s = spread(freqs, power);
    let total: f64 = power.iter().sum();
    if s < 1e-15 || total < 1e-24 {
        return 0.0;
    }
    kurtosis_with(freqs, power, centroid(freqs, power), s, total)
}

/// [`kurtosis`] with the centroid, spread and total power precomputed
/// (bit-identical).
pub fn kurtosis_with(freqs: &[f64], power: &[f64], c: f64, s: f64, total: f64) -> f64 {
    if s < 1e-15 || total < 1e-24 {
        return 0.0;
    }
    freqs
        .iter()
        .zip(power)
        .map(|(f, p)| ((f - c) / s).powi(4) * p)
        .sum::<f64>()
        / total
}

/// Shannon entropy of the normalised power distribution.
pub fn entropy(power: &[f64]) -> f64 {
    entropy_with(power, power.iter().sum())
}

/// [`entropy`] with the total power precomputed (bit-identical).
pub fn entropy_with(power: &[f64], total: f64) -> f64 {
    if total < 1e-24 {
        return 0.0;
    }
    power
        .iter()
        .filter(|&&p| p > 1e-24)
        .map(|&p| {
            let q = p / total;
            -q * q.ln()
        })
        .sum()
}

/// Least-squares slope of power against frequency.
pub fn slope(freqs: &[f64], power: &[f64]) -> f64 {
    let n = freqs.len();
    if n < 2 {
        return 0.0;
    }
    let fm: f64 = freqs.iter().sum::<f64>() / n as f64;
    let pm: f64 = power.iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for (f, p) in freqs.iter().zip(power) {
        num += (f - fm) * (p - pm);
        den += (f - fm) * (f - fm);
    }
    if den < 1e-24 {
        0.0
    } else {
        num / den
    }
}

/// Spectral decrease: average of `(P[k] − P[0]) / k`, normalised by the
/// total power above DC. Negative for low-frequency-dominated spectra.
pub fn decrease(power: &[f64]) -> f64 {
    if power.len() < 2 {
        return 0.0;
    }
    let tail: f64 = power[1..].iter().sum();
    if tail < 1e-24 {
        return 0.0;
    }
    power[1..]
        .iter()
        .enumerate()
        .map(|(k, &p)| (p - power[0]) / (k + 1) as f64)
        .sum::<f64>()
        / tail
}

/// Frequency below which `fraction` of total power lies.
pub fn rolloff(freqs: &[f64], power: &[f64], fraction: f64) -> f64 {
    rolloff_with(freqs, power, fraction, power.iter().sum())
}

/// [`rolloff`] with the total power precomputed (bit-identical).
pub fn rolloff_with(freqs: &[f64], power: &[f64], fraction: f64, total: f64) -> f64 {
    if total < 1e-24 || freqs.is_empty() {
        return 0.0;
    }
    let target = total * fraction.clamp(0.0, 1.0);
    let mut acc = 0.0;
    for (f, p) in freqs.iter().zip(power) {
        acc += p;
        if acc >= target {
            return *f;
        }
    }
    *freqs.last().unwrap()
}

/// Median frequency: 50% power rolloff.
pub fn median_frequency(freqs: &[f64], power: &[f64]) -> f64 {
    rolloff(freqs, power, 0.5)
}

/// Fundamental frequency estimate: the lowest non-DC local spectral peak
/// that reaches at least 10% of the global maximum; falls back to the
/// global argmax frequency.
pub fn fundamental_frequency(freqs: &[f64], power: &[f64]) -> f64 {
    if power.len() < 3 {
        return 0.0;
    }
    let max_p = power.iter().cloned().fold(0.0_f64, f64::max);
    if max_p < 1e-24 {
        return 0.0;
    }
    for k in 1..power.len() - 1 {
        if power[k] > power[k - 1] && power[k] >= power[k + 1] && power[k] >= 0.1 * max_p {
            return freqs[k];
        }
    }
    let arg = power
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    freqs[arg]
}

/// Width of the frequency interval `[rolloff(2.5%), rolloff(97.5%)]`
/// containing 95% of the power.
pub fn power_bandwidth(freqs: &[f64], power: &[f64]) -> f64 {
    (rolloff(freqs, power, 0.975) - rolloff(freqs, power, 0.025)).max(0.0)
}

/// Number of positive turning points in the power spectrum (spectral
/// complexity proxy).
pub fn positive_turning_points(power: &[f64]) -> f64 {
    if power.len() < 3 {
        return 0.0;
    }
    power
        .windows(3)
        .filter(|w| w[1] > w[0] && w[1] > w[2])
        .count() as f64
}

/// Fraction of total power falling in band `i` of `k` equal-width bands.
pub fn band_energy(power: &[f64], i: usize, k: usize) -> f64 {
    band_energy_with(power, i, k, power.iter().sum())
}

/// [`band_energy`] with the total power precomputed (bit-identical).
pub fn band_energy_with(power: &[f64], i: usize, k: usize, total: f64) -> f64 {
    if power.is_empty() || k == 0 || i >= k {
        return 0.0;
    }
    if total < 1e-24 {
        return 0.0;
    }
    let band = power.len().div_ceil(k);
    let start = (i * band).min(power.len());
    let end = ((i + 1) * band).min(power.len());
    power[start..end].iter().sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::power_spectrum;
    use std::f64::consts::PI;

    fn tone(n: usize, cycles: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * cycles * i as f64 / n as f64).sin())
            .collect()
    }

    #[test]
    fn centroid_tracks_tone_frequency() {
        let (f, p) = power_spectrum(&tone(256, 32.0), 1.0);
        assert!((centroid(&f, &p) - 0.125).abs() < 0.01);
        assert!(spread(&f, &p) < 0.02);
    }

    #[test]
    fn entropy_orders_pure_vs_noise() {
        let (_, pure) = power_spectrum(&tone(256, 16.0), 1.0);
        let noise: Vec<f64> = (0..256)
            .map(|i| ((i * 7919 + 13) % 101) as f64 / 50.0 - 1.0)
            .collect();
        let (_, noisy) = power_spectrum(&noise, 1.0);
        assert!(entropy(&pure) < entropy(&noisy));
    }

    #[test]
    fn rolloff_monotone_in_fraction() {
        let noise: Vec<f64> = (0..512)
            .map(|i| ((i * 2654435761_usize) % 997) as f64 / 500.0 - 1.0)
            .collect();
        let (f, p) = power_spectrum(&noise, 1.0);
        let r50 = rolloff(&f, &p, 0.5);
        let r85 = rolloff(&f, &p, 0.85);
        let r95 = rolloff(&f, &p, 0.95);
        assert!(r50 <= r85 && r85 <= r95);
        assert_eq!(median_frequency(&f, &p), r50);
    }

    #[test]
    fn fundamental_of_harmonic_signal_is_lowest_peak() {
        let n = 512;
        // f0 plus a stronger 3rd harmonic: fundamental must still win.
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * PI * 8.0 * t).sin() + 1.5 * (2.0 * PI * 24.0 * t).sin()
            })
            .collect();
        let (f, p) = power_spectrum(&x, 1.0);
        let f0 = fundamental_frequency(&f, &p);
        assert!((f0 - 8.0 / n as f64).abs() < 2.0 / n as f64, "got {f0}");
    }

    #[test]
    fn bandwidth_wider_for_noise() {
        let (f1, p1) = power_spectrum(&tone(256, 16.0), 1.0);
        let noise: Vec<f64> = (0..256).map(|i| ((i * 31 + 7) % 17) as f64 - 8.0).collect();
        let (f2, p2) = power_spectrum(&noise, 1.0);
        assert!(power_bandwidth(&f1, &p1) < power_bandwidth(&f2, &p2));
    }

    #[test]
    fn band_energies_partition() {
        let noise: Vec<f64> = (0..256)
            .map(|i| ((i * 131 + 3) % 23) as f64 - 11.0)
            .collect();
        let (_, p) = power_spectrum(&noise, 1.0);
        let s: f64 = (0..10).map(|i| band_energy(&p, i, 10)).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_spectra_are_finite() {
        let z = vec![0.0; 16];
        let f: Vec<f64> = (0..16).map(|i| i as f64).collect();
        for v in [
            centroid(&f, &z),
            spread(&f, &z),
            skewness(&f, &z),
            kurtosis(&f, &z),
            entropy(&z),
            slope(&f, &z),
            decrease(&z),
            rolloff(&f, &z, 0.85),
            fundamental_frequency(&f, &z),
            power_bandwidth(&f, &z),
        ] {
            assert!(v.is_finite());
        }
    }
}
