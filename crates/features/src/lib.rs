//! `ns-features` — TSFEL-style time-series feature extraction for NodeSentry.
//!
//! The paper's coarse-grained clustering stage (§3.3) represents MTS
//! segments of *different lengths* as fixed-width vectors by extracting 134
//! interpretable features per metric across the statistical, temporal and
//! spectral domains (via the TSFEL library in the original). This crate is
//! that substrate, rebuilt from scratch:
//!
//! * [`fft`] — iterative radix-2 FFT, one-sided power spectra and Welch PSD,
//! * [`dwt`] — Haar wavelet decomposition and wavelet energies,
//! * [`statistical`] / [`temporal`] / [`spectral`] — the individual feature
//!   primitives,
//! * [`catalog`] — the ordered, named [`FeatureCatalog`] (default: exactly
//!   134 features) and the MTS extraction engine
//!   ([`FeatureCatalog::extract_mts`]) that turns a `T × M` segment into an
//!   `M · 134`-wide vector, parallelised over metrics.
//!
//! Every feature evaluation is total: hostile inputs (empty, constant,
//! single-sample series) produce finite values, never NaNs — a hard
//! requirement for distance computations downstream.

pub mod catalog;
pub mod dwt;
pub mod fft;
pub mod spectral;
pub mod statistical;
pub mod temporal;

pub use catalog::{Domain, FeatureCatalog, FeatureKind, FeatureScratch};
