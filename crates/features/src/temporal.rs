//! Temporal-domain feature primitives: differences, strikes, turning
//! points, peaks, complexity estimators.

use ns_linalg::stats;

/// First differences `x[t+1] - x[t]` (empty for len < 2).
pub fn diffs(x: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    diffs_into(x, &mut out);
    out
}

/// [`diffs`] into a caller-owned buffer (cleared and refilled), for
/// allocation-free reuse across series.
pub fn diffs_into(x: &[f64], out: &mut Vec<f64>) {
    out.clear();
    if x.len() < 2 {
        return;
    }
    out.extend(x.windows(2).map(|w| w[1] - w[0]));
}

/// Rate of sign changes of the signal around zero, normalised by length.
pub fn zero_crossing_rate(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let crossings = x
        .windows(2)
        .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
        .count();
    crossings as f64 / (x.len() - 1) as f64
}

/// Rate of crossings of the series mean.
pub fn mean_crossing_rate(x: &[f64]) -> f64 {
    mean_crossing_rate_with(x, stats::mean(x))
}

/// [`mean_crossing_rate`] with the mean precomputed and no shifted copy:
/// each window tests `(x[t] − m) ≥ 0`, the exact values the materialised
/// series would hold, so the count (and rate) is bit-identical.
pub fn mean_crossing_rate_with(x: &[f64], m: f64) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let crossings = x
        .windows(2)
        .filter(|w| ((w[0] - m) >= 0.0) != ((w[1] - m) >= 0.0))
        .count();
    crossings as f64 / (x.len() - 1) as f64
}

/// Number of positive turning points (local maxima in the diff sign).
pub fn positive_turning_points(x: &[f64]) -> f64 {
    turning_points(x, true)
}

/// Number of negative turning points (local minima).
pub fn negative_turning_points(x: &[f64]) -> f64 {
    turning_points(x, false)
}

fn turning_points(x: &[f64], positive: bool) -> f64 {
    if x.len() < 3 {
        return 0.0;
    }
    let mut count = 0usize;
    for w in x.windows(3) {
        let up_then_down = w[1] > w[0] && w[1] > w[2];
        let down_then_up = w[1] < w[0] && w[1] < w[2];
        if (positive && up_then_down) || (!positive && down_then_up) {
            count += 1;
        }
    }
    count as f64
}

/// Count of strict local maxima that exceed both neighbours by `min_delta`.
pub fn peak_count(x: &[f64], min_delta: f64) -> f64 {
    if x.len() < 3 {
        return 0.0;
    }
    x.windows(3)
        .filter(|w| w[1] - w[0] > min_delta && w[1] - w[2] > min_delta)
        .count() as f64
}

/// Trapezoidal area under the curve with unit spacing.
pub fn trapz(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    x.windows(2).map(|w| 0.5 * (w[0] + w[1])).sum()
}

/// [`trapz`] over `|x|` without materialising the rectified series:
/// `Σ 0.5·(|x[t]| + |x[t+1]|)`, term-for-term what `trapz` sees on the
/// copied `|x|` array, so bit-identical.
pub fn trapz_abs(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    x.windows(2).map(|w| 0.5 * (w[0].abs() + w[1].abs())).sum()
}

/// Temporal centroid: energy-weighted mean sample index, normalised to
/// `[0, 1]`. Returns 0.5 for zero-energy signals.
pub fn temporal_centroid(x: &[f64]) -> f64 {
    temporal_centroid_with(x, x.iter().map(|v| v * v).sum())
}

/// [`temporal_centroid`] with the total energy `Σx²` precomputed
/// (bit-identical).
pub fn temporal_centroid_with(x: &[f64], total: f64) -> f64 {
    if x.len() < 2 {
        return 0.5;
    }
    if total < 1e-24 {
        return 0.5;
    }
    let weighted: f64 = x.iter().enumerate().map(|(i, v)| i as f64 * v * v).sum();
    weighted / (total * (x.len() - 1) as f64)
}

/// Longest run of consecutive samples strictly above the mean, as a
/// fraction of the series length.
pub fn longest_strike_above_mean(x: &[f64]) -> f64 {
    longest_strike(x, stats::mean(x), true)
}

/// Longest run of consecutive samples strictly below the mean.
pub fn longest_strike_below_mean(x: &[f64]) -> f64 {
    longest_strike(x, stats::mean(x), false)
}

/// [`longest_strike_above_mean`] with the mean precomputed (bit-identical).
pub fn longest_strike_above_mean_with(x: &[f64], m: f64) -> f64 {
    longest_strike(x, m, true)
}

/// [`longest_strike_below_mean`] with the mean precomputed (bit-identical).
pub fn longest_strike_below_mean_with(x: &[f64], m: f64) -> f64 {
    longest_strike(x, m, false)
}

fn longest_strike(x: &[f64], m: f64, above: bool) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut best = 0usize;
    let mut run = 0usize;
    for &v in x {
        let hit = if above { v > m } else { v < m };
        if hit {
            run += 1;
            best = best.max(run);
        } else {
            run = 0;
        }
    }
    best as f64 / x.len() as f64
}

/// Relative index (0..1) of the first occurrence of the maximum.
pub fn first_location_of_max(x: &[f64]) -> f64 {
    relative_location(x, true, true)
}

/// Relative index of the first occurrence of the minimum.
pub fn first_location_of_min(x: &[f64]) -> f64 {
    relative_location(x, false, true)
}

/// Relative index of the last occurrence of the maximum.
pub fn last_location_of_max(x: &[f64]) -> f64 {
    relative_location(x, true, false)
}

/// Relative index of the last occurrence of the minimum.
pub fn last_location_of_min(x: &[f64]) -> f64 {
    relative_location(x, false, false)
}

fn relative_location(x: &[f64], maximum: bool, first: bool) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let target = if maximum {
        stats::max(x)
    } else {
        stats::min(x)
    };
    relative_location_of(x, target, first)
}

/// Relative index (0..1) of the first/last sample equal to `target`, the
/// fold-based extremum from [`stats::min`]/[`stats::max`] (which can
/// surface a different ±0.0 than a sorted view would). 0 when absent.
pub fn relative_location_of(x: &[f64], target: f64, first: bool) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let pos = if first {
        x.iter().position(|&v| v == target)
    } else {
        x.iter().rposition(|&v| v == target)
    };
    match pos {
        Some(i) => i as f64 / x.len() as f64,
        None => 0.0,
    }
}

/// Time-reversal asymmetry statistic at the given lag
/// (`mean(x[t+2l]² x[t+l] − x[t+l] x[t]²)`); 0 for short series.
pub fn time_reversal_asymmetry(x: &[f64], lag: usize) -> f64 {
    if x.len() <= 2 * lag || lag == 0 {
        return 0.0;
    }
    let n = x.len() - 2 * lag;
    (0..n)
        .map(|t| x[t + 2 * lag] * x[t + 2 * lag] * x[t + lag] - x[t + lag] * x[t] * x[t])
        .sum::<f64>()
        / n as f64
}

/// C3 nonlinearity measure: `mean(x[t+2l] * x[t+l] * x[t])`.
pub fn c3(x: &[f64], lag: usize) -> f64 {
    if x.len() <= 2 * lag || lag == 0 {
        return 0.0;
    }
    let n = x.len() - 2 * lag;
    (0..n)
        .map(|t| x[t + 2 * lag] * x[t + lag] * x[t])
        .sum::<f64>()
        / n as f64
}

/// CID complexity estimate: `sqrt(sum(diff²))`. Higher for more complex
/// (wigglier) series.
pub fn cid_ce(x: &[f64]) -> f64 {
    cid_ce_from_diffs(&diffs(x))
}

/// [`cid_ce`] over already-materialised first differences (bit-identical
/// given the [`diffs`] of the same series).
pub fn cid_ce_from_diffs(d: &[f64]) -> f64 {
    d.iter().map(|d| d * d).sum::<f64>().sqrt()
}

/// Fraction of samples farther than `r` population standard deviations
/// from the mean.
pub fn ratio_beyond_r_sigma(x: &[f64], r: f64) -> f64 {
    ratio_beyond_r_sigma_with(x, r, stats::mean(x), stats::std_dev(x))
}

/// [`ratio_beyond_r_sigma`] with the moments precomputed (bit-identical).
pub fn ratio_beyond_r_sigma_with(x: &[f64], r: f64, m: f64, s: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    if s < 1e-15 {
        return 0.0;
    }
    x.iter().filter(|&&v| (v - m).abs() > r * s).count() as f64 / x.len() as f64
}

/// Energy of the `i`-th of `k` equal chunks as a fraction of total energy.
pub fn energy_ratio_chunk(x: &[f64], i: usize, k: usize) -> f64 {
    energy_ratio_chunk_with(x, i, k, x.iter().map(|v| v * v).sum())
}

/// [`energy_ratio_chunk`] with the total energy `Σx²` precomputed
/// (bit-identical).
pub fn energy_ratio_chunk_with(x: &[f64], i: usize, k: usize, total: f64) -> f64 {
    if x.is_empty() || k == 0 || i >= k {
        return 0.0;
    }
    if total < 1e-24 {
        return 0.0;
    }
    let chunk = x.len().div_ceil(k);
    let start = (i * chunk).min(x.len());
    let end = ((i + 1) * chunk).min(x.len());
    x[start..end].iter().map(|v| v * v).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffs_basic() {
        assert_eq!(diffs(&[1.0, 4.0, 2.0]), vec![3.0, -2.0]);
        assert!(diffs(&[1.0]).is_empty());
    }

    #[test]
    fn zero_crossings_of_alternating() {
        let x = [1.0, -1.0, 1.0, -1.0, 1.0];
        assert_eq!(zero_crossing_rate(&x), 1.0);
        assert_eq!(zero_crossing_rate(&[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn turning_points_of_zigzag() {
        let x = [0.0, 1.0, 0.0, 1.0, 0.0];
        assert_eq!(positive_turning_points(&x), 2.0);
        assert_eq!(negative_turning_points(&x), 1.0);
    }

    #[test]
    fn peaks_respect_min_delta() {
        let x = [0.0, 0.05, 0.0, 5.0, 0.0];
        assert_eq!(peak_count(&x, 0.1), 1.0);
        assert_eq!(peak_count(&x, 0.0), 2.0);
    }

    #[test]
    fn trapz_of_line() {
        // y = x over [0, 4]: area 8.
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(trapz(&x), 8.0);
    }

    #[test]
    fn centroid_shifts_with_energy() {
        let early = [10.0, 10.0, 0.0, 0.0, 0.0, 0.0];
        let late = [0.0, 0.0, 0.0, 0.0, 10.0, 10.0];
        assert!(temporal_centroid(&early) < 0.3);
        assert!(temporal_centroid(&late) > 0.7);
        assert_eq!(temporal_centroid(&[0.0; 8]), 0.5);
    }

    #[test]
    fn strikes() {
        let x = [0.0, 10.0, 10.0, 10.0, 0.0, 0.0];
        // mean = 5; above-run = 3 (indices 1..=3), below-run = 2 (indices 4..=5).
        assert_eq!(longest_strike_above_mean(&x), 0.5);
        assert_eq!(longest_strike_below_mean(&x), 2.0 / 6.0);
    }

    #[test]
    fn locations_of_extrema() {
        let x = [0.0, 9.0, 1.0, 9.0, -3.0];
        assert_eq!(first_location_of_max(&x), 0.2);
        assert_eq!(last_location_of_max(&x), 0.6);
        assert_eq!(first_location_of_min(&x), 0.8);
    }

    #[test]
    fn trend_statistics_zero_for_symmetric_noise() {
        // A symmetric triangle wave has near-zero time-reversal asymmetry.
        let x: Vec<f64> = (0..100).map(|i| ((i % 10) as f64 - 5.0).abs()).collect();
        assert!(time_reversal_asymmetry(&x, 1).abs() < 2.0);
        assert_eq!(time_reversal_asymmetry(&[1.0, 2.0], 1), 0.0);
        assert_eq!(c3(&[1.0, 2.0], 1), 0.0);
    }

    #[test]
    fn cid_monotone_in_wiggliness() {
        let smooth: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let rough: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 0.0 } else { 2.0 })
            .collect();
        assert!(cid_ce(&rough) > cid_ce(&smooth));
    }

    #[test]
    fn sigma_ratios() {
        let mut x = vec![0.0; 100];
        x[0] = 100.0;
        assert!(ratio_beyond_r_sigma(&x, 3.0) > 0.0);
        assert_eq!(ratio_beyond_r_sigma(&[1.0; 10], 1.0), 0.0);
    }

    #[test]
    fn chunk_energies_sum_to_one() {
        let x: Vec<f64> = (1..=37).map(|i| i as f64).collect();
        let s: f64 = (0..8).map(|i| energy_ratio_chunk(&x, i, 8)).sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(energy_ratio_chunk(&x, 9, 8), 0.0);
    }
}
