//! The feature catalog: a named, ordered list of feature definitions and
//! the engine that evaluates them over a series or an MTS segment.
//!
//! The default catalog mirrors TSFEL's default configuration in spirit and
//! in size: **134 features** per univariate series, spanning the
//! statistical, temporal and spectral domains (the paper, §3.3, extracts
//! "134 interpretable feature indices for each metric"). A [`compact`]
//! profile with 21 high-discrimination features is provided for
//! latency-sensitive online pattern matching.
//!
//! [`compact`]: FeatureCatalog::compact

use crate::{dwt, fft, spectral, statistical, temporal};
use ns_linalg::matrix::Matrix;
use ns_linalg::{stats, vecops};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Feature domain, following the paper's statistical/temporal/spectral
/// taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    Statistical,
    Temporal,
    Spectral,
}

/// A concrete feature to evaluate. Parameterised variants carry their
/// parameter (quantile percent, histogram bin, lag, …).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FeatureKind {
    // --- statistical ---
    Mean,
    Median,
    Std,
    Variance,
    Min,
    Max,
    PeakToPeak,
    Rms,
    Skewness,
    Kurtosis,
    Iqr,
    Mad,
    MeanAbsDeviation,
    AbsEnergy,
    Sum,
    CoefVariation,
    /// Quantile at `percent / 100`.
    Quantile(u8),
    HistEntropy,
    CountAboveMean,
    CountBelowMean,
    ArgmaxRel,
    ArgminRel,
    TrimmedMean,
    /// Histogram bin fraction, bin `i` of 10.
    HistBin(u8),
    // --- temporal ---
    MeanAbsDiff,
    MedianAbsDiff,
    MeanDiff,
    MedianDiff,
    SumAbsDiff,
    MaxDiff,
    MinDiff,
    StdDiff,
    Slope,
    ZeroCrossRate,
    MeanCrossRate,
    PosTurning,
    NegTurning,
    PeakCount,
    TrapzArea,
    AbsTrapzArea,
    TemporalCentroid,
    TotalEnergy,
    EntropyDiff,
    LongestStrikeAbove,
    LongestStrikeBelow,
    FirstLocMax,
    FirstLocMin,
    LastLocMax,
    LastLocMin,
    TimeReversalAsym,
    C3,
    CidCe,
    /// Fraction beyond `r` sigma.
    RatioBeyondSigma(u8),
    /// Autocorrelation at the given lag.
    AutoCorr(u8),
    /// Energy fraction in chunk `i` of 8.
    EnergyChunk(u8),
    // --- spectral ---
    MaxPower,
    FreqAtMaxPower,
    SpectralCentroid,
    SpectralSpread,
    SpectralSkewness,
    SpectralKurtosis,
    SpectralEntropy,
    SpectralSlope,
    SpectralDecrease,
    /// Rolloff at `percent / 100` of the power.
    SpectralRolloff(u8),
    MedianFrequency,
    FundamentalFrequency,
    PowerBandwidth,
    SpectralPosTurning,
    /// Fraction of power in band `i` of 10.
    BandEnergy(u8),
    /// Magnitude of FFT coefficient `i` (1-based, DC excluded).
    FftCoeff(u8),
    /// Haar detail energy at level `i` (0 = finest) of 5.
    WaveletEnergy(u8),
    WaveletEntropy,
}

impl FeatureKind {
    /// The domain this feature belongs to.
    pub fn domain(&self) -> Domain {
        use FeatureKind::*;
        match self {
            Mean | Median | Std | Variance | Min | Max | PeakToPeak | Rms | Skewness | Kurtosis
            | Iqr | Mad | MeanAbsDeviation | AbsEnergy | Sum | CoefVariation | Quantile(_)
            | HistEntropy | CountAboveMean | CountBelowMean | ArgmaxRel | ArgminRel
            | TrimmedMean | HistBin(_) => Domain::Statistical,
            MeanAbsDiff | MedianAbsDiff | MeanDiff | MedianDiff | SumAbsDiff | MaxDiff
            | MinDiff | StdDiff | Slope | ZeroCrossRate | MeanCrossRate | PosTurning
            | NegTurning | PeakCount | TrapzArea | AbsTrapzArea | TemporalCentroid
            | TotalEnergy | EntropyDiff | LongestStrikeAbove | LongestStrikeBelow | FirstLocMax
            | FirstLocMin | LastLocMax | LastLocMin | TimeReversalAsym | C3 | CidCe
            | RatioBeyondSigma(_) | AutoCorr(_) | EnergyChunk(_) => Domain::Temporal,
            _ => Domain::Spectral,
        }
    }

    /// Canonical snake_case name.
    pub fn name(&self) -> String {
        use FeatureKind::*;
        match self {
            Quantile(p) => format!("quantile_{p:02}"),
            HistBin(i) => format!("hist_bin_{i}"),
            RatioBeyondSigma(r) => format!("ratio_beyond_{r}sigma"),
            AutoCorr(l) => format!("autocorr_lag{l}"),
            EnergyChunk(i) => format!("energy_chunk_{i}"),
            SpectralRolloff(p) => format!("spectral_rolloff_{p}"),
            BandEnergy(i) => format!("band_energy_{i}"),
            FftCoeff(i) => format!("fft_coeff_{i}"),
            WaveletEnergy(l) => format!("wavelet_energy_l{l}"),
            other => format!("{other:?}")
                .chars()
                .fold(String::new(), |mut s, c| {
                    if c.is_uppercase() {
                        if !s.is_empty() {
                            s.push('_');
                        }
                        s.push(c.to_ascii_lowercase());
                    } else {
                        s.push(c);
                    }
                    s
                }),
        }
    }
}

/// Pre-computed per-series context shared by all feature evaluations, so a
/// 134-feature pass sorts/differences/transforms the series only once.
struct SeriesContext<'a> {
    x: &'a [f64],
    sorted: Vec<f64>,
    diffs: Vec<f64>,
    freqs: Vec<f64>,
    power: Vec<f64>,
    mags: Vec<f64>,
    wavelet: Vec<f64>,
}

impl<'a> SeriesContext<'a> {
    fn new(x: &'a [f64], sample_rate: f64) -> Self {
        let mut sorted = x.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let diffs = temporal::diffs(x);
        let (freqs, power) = if x.len() >= 2 {
            fft::power_spectrum(x, sample_rate)
        } else {
            (vec![0.0], vec![0.0])
        };
        let mags = if x.len() >= 2 {
            fft::magnitude_spectrum(x)
        } else {
            vec![0.0]
        };
        let wavelet = dwt::wavelet_energies(x, 5);
        Self {
            x,
            sorted,
            diffs,
            freqs,
            power,
            mags,
            wavelet,
        }
    }

    fn eval(&self, kind: FeatureKind) -> f64 {
        use FeatureKind::*;
        let x = self.x;
        let v = match kind {
            Mean => stats::mean(x),
            Median => stats::quantile_sorted(&self.sorted, 0.5),
            Std => stats::std_dev(x),
            Variance => stats::variance(x),
            Min => {
                if x.is_empty() {
                    0.0
                } else {
                    self.sorted[0]
                }
            }
            Max => {
                if x.is_empty() {
                    0.0
                } else {
                    self.sorted[self.sorted.len() - 1]
                }
            }
            PeakToPeak => {
                if x.is_empty() {
                    0.0
                } else {
                    self.sorted[self.sorted.len() - 1] - self.sorted[0]
                }
            }
            Rms => stats::rms(x),
            Skewness => stats::skewness(x),
            Kurtosis => stats::kurtosis(x),
            Iqr => {
                stats::quantile_sorted(&self.sorted, 0.75)
                    - stats::quantile_sorted(&self.sorted, 0.25)
            }
            Mad => stats::mad(x),
            MeanAbsDeviation => statistical::mean_abs_deviation(x),
            AbsEnergy => statistical::abs_energy(x),
            Sum => x.iter().sum(),
            CoefVariation => statistical::coefficient_of_variation(x),
            Quantile(p) => stats::quantile_sorted(&self.sorted, p as f64 / 100.0),
            HistEntropy => stats::histogram_entropy(x, 10),
            CountAboveMean => statistical::count_above_mean(x),
            CountBelowMean => statistical::count_below_mean(x),
            ArgmaxRel => temporal::first_location_of_max(x),
            ArgminRel => temporal::first_location_of_min(x),
            TrimmedMean => stats::trimmed_mean_std(x, 0.05).0,
            HistBin(i) => statistical::hist_bin_fraction(x, i as usize, 10),
            MeanAbsDiff => stats::mean_abs_change(x),
            MedianAbsDiff => {
                let a: Vec<f64> = self.diffs.iter().map(|d| d.abs()).collect();
                stats::median(&a)
            }
            MeanDiff => stats::mean(&self.diffs),
            MedianDiff => stats::median(&self.diffs),
            SumAbsDiff => self.diffs.iter().map(|d| d.abs()).sum(),
            MaxDiff => {
                if self.diffs.is_empty() {
                    0.0
                } else {
                    stats::max(&self.diffs)
                }
            }
            MinDiff => {
                if self.diffs.is_empty() {
                    0.0
                } else {
                    stats::min(&self.diffs)
                }
            }
            StdDiff => stats::std_dev(&self.diffs),
            Slope => stats::slope(x),
            ZeroCrossRate => temporal::zero_crossing_rate(x),
            MeanCrossRate => temporal::mean_crossing_rate(x),
            PosTurning => temporal::positive_turning_points(x),
            NegTurning => temporal::negative_turning_points(x),
            PeakCount => temporal::peak_count(x, 0.0),
            TrapzArea => temporal::trapz(x),
            AbsTrapzArea => temporal::trapz(&x.iter().map(|v| v.abs()).collect::<Vec<_>>()),
            TemporalCentroid => temporal::temporal_centroid(x),
            TotalEnergy => statistical::abs_energy(x) / x.len().max(1) as f64,
            EntropyDiff => stats::histogram_entropy(&self.diffs, 10),
            LongestStrikeAbove => temporal::longest_strike_above_mean(x),
            LongestStrikeBelow => temporal::longest_strike_below_mean(x),
            FirstLocMax => temporal::first_location_of_max(x),
            FirstLocMin => temporal::first_location_of_min(x),
            LastLocMax => temporal::last_location_of_max(x),
            LastLocMin => temporal::last_location_of_min(x),
            TimeReversalAsym => temporal::time_reversal_asymmetry(x, 1),
            C3 => temporal::c3(x, 1),
            CidCe => temporal::cid_ce(x),
            RatioBeyondSigma(r) => temporal::ratio_beyond_r_sigma(x, r as f64),
            AutoCorr(l) => stats::autocorrelation(x, l as usize),
            EnergyChunk(i) => temporal::energy_ratio_chunk(x, i as usize, 8),
            MaxPower => stats::max(&self.power).max(0.0),
            FreqAtMaxPower => vecops::argmax(&self.power)
                .map(|i| self.freqs[i])
                .unwrap_or(0.0),
            SpectralCentroid => spectral::centroid(&self.freqs, &self.power),
            SpectralSpread => spectral::spread(&self.freqs, &self.power),
            SpectralSkewness => spectral::skewness(&self.freqs, &self.power),
            SpectralKurtosis => spectral::kurtosis(&self.freqs, &self.power),
            SpectralEntropy => spectral::entropy(&self.power),
            SpectralSlope => spectral::slope(&self.freqs, &self.power),
            SpectralDecrease => spectral::decrease(&self.power),
            SpectralRolloff(p) => spectral::rolloff(&self.freqs, &self.power, p as f64 / 100.0),
            MedianFrequency => spectral::median_frequency(&self.freqs, &self.power),
            FundamentalFrequency => spectral::fundamental_frequency(&self.freqs, &self.power),
            PowerBandwidth => spectral::power_bandwidth(&self.freqs, &self.power),
            SpectralPosTurning => spectral::positive_turning_points(&self.power),
            BandEnergy(i) => spectral::band_energy(&self.power, i as usize, 10),
            FftCoeff(i) => self.mags.get(i as usize).copied().unwrap_or(0.0),
            WaveletEnergy(l) => self.wavelet.get(l as usize).copied().unwrap_or(0.0),
            WaveletEntropy => dwt::wavelet_entropy(x, 5),
        };
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }
}

/// An ordered, named feature set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeatureCatalog {
    kinds: Vec<FeatureKind>,
}

impl FeatureCatalog {
    /// The default 134-feature catalog (TSFEL-default-sized; paper §3.3).
    pub fn standard() -> Self {
        use FeatureKind::*;
        let mut kinds = vec![
            // statistical (38)
            Mean,
            Median,
            Std,
            Variance,
            Min,
            Max,
            PeakToPeak,
            Rms,
            Skewness,
            Kurtosis,
            Iqr,
            Mad,
            MeanAbsDeviation,
            AbsEnergy,
            Sum,
            CoefVariation,
        ];
        for p in [1u8, 5, 25, 75, 95, 99] {
            kinds.push(Quantile(p));
        }
        kinds.extend([
            HistEntropy,
            CountAboveMean,
            CountBelowMean,
            ArgmaxRel,
            ArgminRel,
            TrimmedMean,
        ]);
        for i in 0..10u8 {
            kinds.push(HistBin(i));
        }
        // temporal (44)
        kinds.extend([
            MeanAbsDiff,
            MedianAbsDiff,
            MeanDiff,
            MedianDiff,
            SumAbsDiff,
            MaxDiff,
            MinDiff,
            StdDiff,
            Slope,
            ZeroCrossRate,
            MeanCrossRate,
            PosTurning,
            NegTurning,
            PeakCount,
            TrapzArea,
            AbsTrapzArea,
            TemporalCentroid,
            TotalEnergy,
            EntropyDiff,
            LongestStrikeAbove,
            LongestStrikeBelow,
            FirstLocMax,
            FirstLocMin,
            LastLocMax,
            LastLocMin,
            TimeReversalAsym,
            C3,
            CidCe,
        ]);
        for r in [1u8, 2, 3] {
            kinds.push(RatioBeyondSigma(r));
        }
        for l in [1u8, 2, 3, 5, 10] {
            kinds.push(AutoCorr(l));
        }
        for i in 0..8u8 {
            kinds.push(EnergyChunk(i));
        }
        // spectral (52)
        kinds.extend([
            MaxPower,
            FreqAtMaxPower,
            SpectralCentroid,
            SpectralSpread,
            SpectralSkewness,
            SpectralKurtosis,
            SpectralEntropy,
            SpectralSlope,
            SpectralDecrease,
            SpectralRolloff(85),
            SpectralRolloff(95),
            MedianFrequency,
            FundamentalFrequency,
            PowerBandwidth,
            SpectralPosTurning,
        ]);
        for i in 0..10u8 {
            kinds.push(BandEnergy(i));
        }
        for i in 1..=21u8 {
            kinds.push(FftCoeff(i));
        }
        for l in 0..5u8 {
            kinds.push(WaveletEnergy(l));
        }
        kinds.push(WaveletEntropy);
        Self { kinds }
    }

    /// A compact 21-feature profile covering all three domains, for online
    /// pattern matching where extraction latency matters.
    pub fn compact() -> Self {
        use FeatureKind::*;
        Self {
            kinds: vec![
                Mean,
                Median,
                Std,
                Min,
                Max,
                Rms,
                Skewness,
                Kurtosis,
                Iqr,
                MeanAbsDiff,
                Slope,
                ZeroCrossRate,
                TemporalCentroid,
                CidCe,
                AutoCorr(1),
                MaxPower,
                SpectralCentroid,
                SpectralEntropy,
                MedianFrequency,
                WaveletEnergy(0),
                WaveletEntropy,
            ],
        }
    }

    /// Build from an explicit kind list.
    pub fn from_kinds(kinds: Vec<FeatureKind>) -> Self {
        Self { kinds }
    }

    /// Number of features per univariate series.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kinds in evaluation order.
    pub fn kinds(&self) -> &[FeatureKind] {
        &self.kinds
    }

    /// Feature names in evaluation order.
    pub fn names(&self) -> Vec<String> {
        self.kinds.iter().map(|k| k.name()).collect()
    }

    /// Count of features per domain `(statistical, temporal, spectral)`.
    pub fn domain_counts(&self) -> (usize, usize, usize) {
        let mut s = 0;
        let mut t = 0;
        let mut p = 0;
        for k in &self.kinds {
            match k.domain() {
                Domain::Statistical => s += 1,
                Domain::Temporal => t += 1,
                Domain::Spectral => p += 1,
            }
        }
        (s, t, p)
    }

    /// Evaluate every feature over one univariate series.
    pub fn extract(&self, x: &[f64], sample_rate: f64) -> Vec<f64> {
        let ctx = SeriesContext::new(x, sample_rate);
        self.kinds.iter().map(|&k| ctx.eval(k)).collect()
    }

    /// Evaluate over an MTS segment stored as a `T × M` matrix (rows are
    /// timestamps, columns are metrics): per-metric feature vectors are
    /// concatenated column-major, giving a fixed `M * len()` width
    /// regardless of segment length — exactly the property coarse-grained
    /// clustering needs. Metrics are processed in parallel.
    pub fn extract_mts(&self, segment: &Matrix, sample_rate: f64) -> Vec<f64> {
        let m = segment.cols();
        let per: Vec<Vec<f64>> = (0..m)
            .into_par_iter()
            .map(|c| {
                let col = segment.col(c);
                self.extract(&col, sample_rate)
            })
            .collect();
        let mut out = Vec::with_capacity(m * self.kinds.len());
        for v in per {
            out.extend(v);
        }
        out
    }
}

impl Default for FeatureCatalog {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_has_134_features() {
        let c = FeatureCatalog::standard();
        assert_eq!(c.len(), 134, "paper §3.3: 134 features per metric");
        let (s, t, p) = c.domain_counts();
        assert_eq!(s + t + p, 134);
        assert!(
            s >= 30 && t >= 40 && p >= 40,
            "all domains represented: {s}/{t}/{p}"
        );
    }

    #[test]
    fn names_are_unique() {
        let c = FeatureCatalog::standard();
        let mut names = c.names();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate feature names");
    }

    #[test]
    fn extraction_is_finite_on_hostile_inputs() {
        let c = FeatureCatalog::standard();
        for x in [
            vec![],
            vec![1.0],
            vec![0.0, 0.0],
            vec![5.0; 100],
            vec![f64::MAX / 1e10, -f64::MAX / 1e10],
            (0..7).map(|i| i as f64).collect::<Vec<_>>(),
        ] {
            let f = c.extract(&x, 1.0);
            assert_eq!(f.len(), 134);
            assert!(
                f.iter().all(|v| v.is_finite()),
                "non-finite feature for {x:?}"
            );
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let c = FeatureCatalog::standard();
        let x: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.13).sin() * 3.0 + 1.0)
            .collect();
        assert_eq!(c.extract(&x, 0.5), c.extract(&x, 0.5));
    }

    #[test]
    fn mts_extraction_concatenates_per_metric() {
        let c = FeatureCatalog::compact();
        let seg = Matrix::from_fn(50, 3, |r, col| (r as f64 * (col + 1) as f64 * 0.1).sin());
        let f = c.extract_mts(&seg, 1.0);
        assert_eq!(f.len(), 3 * c.len());
        // First block equals the standalone extraction of column 0.
        let col0 = seg.col(0);
        assert_eq!(&f[..c.len()], &c.extract(&col0, 1.0)[..]);
    }

    #[test]
    fn distinguishes_different_signals() {
        let c = FeatureCatalog::standard();
        let quiet: Vec<f64> = (0..256).map(|i| 0.01 * (i as f64 * 0.05).sin()).collect();
        let busy: Vec<f64> = (0..256)
            .map(|i| 5.0 * (i as f64 * 1.3).sin() + i as f64 * 0.1)
            .collect();
        let fq = c.extract(&quiet, 1.0);
        let fb = c.extract(&busy, 1.0);
        let dist: f64 = fq.iter().zip(&fb).map(|(a, b)| (a - b).abs()).sum();
        assert!(
            dist > 1.0,
            "feature vectors should separate distinct signals"
        );
    }

    #[test]
    fn compact_is_a_strict_subset_size() {
        let c = FeatureCatalog::compact();
        assert!(c.len() < FeatureCatalog::standard().len());
        assert_eq!(c.extract(&[1.0, 2.0, 3.0, 4.0], 1.0).len(), c.len());
    }

    #[test]
    fn kind_names_snake_case() {
        assert_eq!(FeatureKind::MeanAbsDiff.name(), "mean_abs_diff");
        assert_eq!(FeatureKind::Quantile(5).name(), "quantile_05");
        assert_eq!(FeatureKind::FftCoeff(3).name(), "fft_coeff_3");
    }
}
