//! The feature catalog: a named, ordered list of feature definitions and
//! the engine that evaluates them over a series or an MTS segment.
//!
//! The default catalog mirrors TSFEL's default configuration in spirit and
//! in size: **134 features** per univariate series, spanning the
//! statistical, temporal and spectral domains (the paper, §3.3, extracts
//! "134 interpretable feature indices for each metric"). A [`compact`]
//! profile with 21 high-discrimination features is provided for
//! latency-sensitive online pattern matching.
//!
//! [`compact`]: FeatureCatalog::compact

use crate::{dwt, fft, spectral, statistical, temporal};
use ns_linalg::matrix::Matrix;
use ns_linalg::{stats, vecops};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Feature domain, following the paper's statistical/temporal/spectral
/// taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    Statistical,
    Temporal,
    Spectral,
}

/// A concrete feature to evaluate. Parameterised variants carry their
/// parameter (quantile percent, histogram bin, lag, …).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FeatureKind {
    // --- statistical ---
    Mean,
    Median,
    Std,
    Variance,
    Min,
    Max,
    PeakToPeak,
    Rms,
    Skewness,
    Kurtosis,
    Iqr,
    Mad,
    MeanAbsDeviation,
    AbsEnergy,
    Sum,
    CoefVariation,
    /// Quantile at `percent / 100`.
    Quantile(u8),
    HistEntropy,
    CountAboveMean,
    CountBelowMean,
    ArgmaxRel,
    ArgminRel,
    TrimmedMean,
    /// Histogram bin fraction, bin `i` of 10.
    HistBin(u8),
    // --- temporal ---
    MeanAbsDiff,
    MedianAbsDiff,
    MeanDiff,
    MedianDiff,
    SumAbsDiff,
    MaxDiff,
    MinDiff,
    StdDiff,
    Slope,
    ZeroCrossRate,
    MeanCrossRate,
    PosTurning,
    NegTurning,
    PeakCount,
    TrapzArea,
    AbsTrapzArea,
    TemporalCentroid,
    TotalEnergy,
    EntropyDiff,
    LongestStrikeAbove,
    LongestStrikeBelow,
    FirstLocMax,
    FirstLocMin,
    LastLocMax,
    LastLocMin,
    TimeReversalAsym,
    C3,
    CidCe,
    /// Fraction beyond `r` sigma.
    RatioBeyondSigma(u8),
    /// Autocorrelation at the given lag.
    AutoCorr(u8),
    /// Energy fraction in chunk `i` of 8.
    EnergyChunk(u8),
    // --- spectral ---
    MaxPower,
    FreqAtMaxPower,
    SpectralCentroid,
    SpectralSpread,
    SpectralSkewness,
    SpectralKurtosis,
    SpectralEntropy,
    SpectralSlope,
    SpectralDecrease,
    /// Rolloff at `percent / 100` of the power.
    SpectralRolloff(u8),
    MedianFrequency,
    FundamentalFrequency,
    PowerBandwidth,
    SpectralPosTurning,
    /// Fraction of power in band `i` of 10.
    BandEnergy(u8),
    /// Magnitude of FFT coefficient `i` (1-based, DC excluded).
    FftCoeff(u8),
    /// Haar detail energy at level `i` (0 = finest) of 5.
    WaveletEnergy(u8),
    WaveletEntropy,
}

impl FeatureKind {
    /// The domain this feature belongs to.
    pub fn domain(&self) -> Domain {
        use FeatureKind::*;
        match self {
            Mean | Median | Std | Variance | Min | Max | PeakToPeak | Rms | Skewness | Kurtosis
            | Iqr | Mad | MeanAbsDeviation | AbsEnergy | Sum | CoefVariation | Quantile(_)
            | HistEntropy | CountAboveMean | CountBelowMean | ArgmaxRel | ArgminRel
            | TrimmedMean | HistBin(_) => Domain::Statistical,
            MeanAbsDiff | MedianAbsDiff | MeanDiff | MedianDiff | SumAbsDiff | MaxDiff
            | MinDiff | StdDiff | Slope | ZeroCrossRate | MeanCrossRate | PosTurning
            | NegTurning | PeakCount | TrapzArea | AbsTrapzArea | TemporalCentroid
            | TotalEnergy | EntropyDiff | LongestStrikeAbove | LongestStrikeBelow | FirstLocMax
            | FirstLocMin | LastLocMax | LastLocMin | TimeReversalAsym | C3 | CidCe
            | RatioBeyondSigma(_) | AutoCorr(_) | EnergyChunk(_) => Domain::Temporal,
            _ => Domain::Spectral,
        }
    }

    /// Canonical snake_case name.
    pub fn name(&self) -> String {
        use FeatureKind::*;
        match self {
            Quantile(p) => format!("quantile_{p:02}"),
            HistBin(i) => format!("hist_bin_{i}"),
            RatioBeyondSigma(r) => format!("ratio_beyond_{r}sigma"),
            AutoCorr(l) => format!("autocorr_lag{l}"),
            EnergyChunk(i) => format!("energy_chunk_{i}"),
            SpectralRolloff(p) => format!("spectral_rolloff_{p}"),
            BandEnergy(i) => format!("band_energy_{i}"),
            FftCoeff(i) => format!("fft_coeff_{i}"),
            WaveletEnergy(l) => format!("wavelet_energy_l{l}"),
            other => format!("{other:?}")
                .chars()
                .fold(String::new(), |mut s, c| {
                    if c.is_uppercase() {
                        if !s.is_empty() {
                            s.push('_');
                        }
                        s.push(c.to_ascii_lowercase());
                    } else {
                        s.push(c);
                    }
                    s
                }),
        }
    }
}

/// Reusable working storage for feature extraction: one instance per
/// thread amortises every per-series buffer — the sort/diff/spectral/
/// wavelet views plus the FFT scratch — across calls, so steady-state
/// extraction over same-length series allocates nothing. Twiddle tables
/// and Hann windows are cached separately, per thread by length, inside
/// [`fft`].
#[derive(Default)]
pub struct FeatureScratch {
    col: Vec<f64>,
    sorted: Vec<f64>,
    diffs: Vec<f64>,
    diffs_sorted: Vec<f64>,
    abs_diffs_sorted: Vec<f64>,
    mad_dev: Vec<f64>,
    freqs: Vec<f64>,
    power: Vec<f64>,
    mags: Vec<f64>,
    wavelet: Vec<f64>,
    fft_buf: Vec<fft::Complex>,
    haar: Vec<f64>,
}

/// Number of histogram bins used by `HistEntropy` / `HistBin` /
/// `EntropyDiff` (10 in the standard catalog).
const HIST_BINS: usize = 10;

/// Per-series scalar aggregates computed once by
/// [`FeatureScratch::prepare`] and shared across feature kinds, so a
/// 134-kind pass stops re-deriving the same mean/std/energy/extrema/
/// histogram/spectral totals dozens of times. Every field is produced by
/// the *same* floating-point expression as the standalone function it
/// feeds (`stats::mean`, `statistical::abs_energy`, `spectral::centroid`,
/// …), so features evaluated through the cache are bit-identical to
/// independent per-kind evaluation — pinned by the
/// `cached_arms_match_standalone_functions` test.
#[derive(Default, Clone, Copy)]
struct SeriesAggregates {
    sum: f64,
    mean: f64,
    /// Raw `Σ(x−m)²`: variance numerator and autocorrelation denominator.
    centered_sq: f64,
    variance: f64,
    std: f64,
    abs_energy: f64,
    /// Fold-based extrema (`stats::min`/`max`). Kept distinct from
    /// `sorted[0]`/`sorted[last]`: the fold and the sort can surface
    /// different ±0.0 bits, and the location features compare against the
    /// fold result.
    fold_min: f64,
    fold_max: f64,
    hist_valid: bool,
    hist: [usize; HIST_BINS],
    // First-difference aggregates (the `*Diff` kinds).
    d_mean: f64,
    d_std: f64,
    d_fold_min: f64,
    d_fold_max: f64,
    d_hist_valid: bool,
    d_hist: [usize; HIST_BINS],
    abs_diff_sum: f64,
    // Robust medians; filled only when the catalog contains
    // Mad/MedianDiff/MedianAbsDiff, so compact profiles skip their sorts.
    mad: f64,
    median_diff: f64,
    median_abs_diff: f64,
    // Power-spectrum aggregates.
    sp_total: f64,
    sp_centroid: f64,
    sp_spread: f64,
}

/// Shared histogram counts over `[lo, hi]`, using the exact binning
/// expression of `stats::histogram_entropy` / `statistical::
/// hist_bin_fraction`. Returns `false` (counts unusable) for the
/// degenerate ranges where those two functions diverge on fallbacks —
/// callers then route through the original function instead.
fn hist_counts(x: &[f64], lo: f64, hi: f64) -> (bool, [usize; HIST_BINS]) {
    let mut counts = [0usize; HIST_BINS];
    let range = hi - lo;
    if x.is_empty() || !range.is_finite() || range < 1e-24 {
        return (false, counts);
    }
    for &v in x {
        let mut b = ((v - lo) / range * HIST_BINS as f64) as usize;
        if b >= HIST_BINS {
            b = HIST_BINS - 1;
        }
        counts[b] += 1;
    }
    (true, counts)
}

impl FeatureScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fill the derived views and shared aggregates for `x` and return the
    /// evaluation context. The scratch stays mutably borrowed for the
    /// context's lifetime. `robust` asks for the sorted-difference /
    /// deviation views behind `Mad`/`MedianDiff`/`MedianAbsDiff`; catalogs
    /// without those kinds skip the three extra sorts.
    fn prepare<'a>(
        &'a mut self,
        x: &'a [f64],
        sample_rate: f64,
        robust: bool,
    ) -> SeriesContext<'a> {
        let cmp = |a: &f64, b: &f64| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal);
        self.sorted.clear();
        self.sorted.extend_from_slice(x);
        self.sorted.sort_by(cmp);
        temporal::diffs_into(x, &mut self.diffs);
        if x.len() >= 2 {
            fft::spectra_into(
                x,
                sample_rate,
                &mut self.fft_buf,
                &mut self.freqs,
                &mut self.power,
                &mut self.mags,
            );
        } else {
            self.freqs.clear();
            self.freqs.push(0.0);
            self.power.clear();
            self.power.push(0.0);
            self.mags.clear();
            self.mags.push(0.0);
        }
        dwt::wavelet_energies_into(x, 5, &mut self.wavelet, &mut self.haar);

        let mut agg = SeriesAggregates::default();
        agg.sum = x.iter().sum();
        agg.mean = if x.is_empty() {
            0.0
        } else {
            agg.sum / x.len() as f64
        };
        let m = agg.mean;
        agg.centered_sq = x.iter().map(|v| (v - m) * (v - m)).sum();
        agg.variance = if x.is_empty() {
            0.0
        } else {
            agg.centered_sq / x.len() as f64
        };
        agg.std = agg.variance.sqrt();
        agg.abs_energy = x.iter().map(|v| v * v).sum();
        agg.fold_min = stats::min(x);
        agg.fold_max = stats::max(x);
        (agg.hist_valid, agg.hist) = hist_counts(x, agg.fold_min, agg.fold_max);

        let d = &self.diffs[..];
        agg.abs_diff_sum = d.iter().map(|v| v.abs()).sum();
        agg.d_mean = if d.is_empty() {
            0.0
        } else {
            d.iter().sum::<f64>() / d.len() as f64
        };
        let dm = agg.d_mean;
        let d_csq: f64 = d.iter().map(|v| (v - dm) * (v - dm)).sum();
        agg.d_std = if d.is_empty() {
            0.0
        } else {
            (d_csq / d.len() as f64).sqrt()
        };
        agg.d_fold_min = stats::min(d);
        agg.d_fold_max = stats::max(d);
        (agg.d_hist_valid, agg.d_hist) = hist_counts(d, agg.d_fold_min, agg.d_fold_max);

        if robust {
            self.diffs_sorted.clear();
            self.diffs_sorted.extend_from_slice(&self.diffs);
            self.diffs_sorted.sort_by(cmp);
            agg.median_diff = stats::quantile_sorted(&self.diffs_sorted, 0.5);
            self.abs_diffs_sorted.clear();
            self.abs_diffs_sorted
                .extend(self.diffs.iter().map(|v| v.abs()));
            self.abs_diffs_sorted.sort_by(cmp);
            agg.median_abs_diff = stats::quantile_sorted(&self.abs_diffs_sorted, 0.5);
            let med = stats::quantile_sorted(&self.sorted, 0.5);
            self.mad_dev.clear();
            self.mad_dev.extend(x.iter().map(|v| (v - med).abs()));
            self.mad_dev.sort_by(cmp);
            agg.mad = stats::quantile_sorted(&self.mad_dev, 0.5);
        }

        agg.sp_total = self.power.iter().sum();
        agg.sp_centroid = spectral::centroid_with(&self.freqs, &self.power, agg.sp_total);
        agg.sp_spread =
            spectral::spread_with(&self.freqs, &self.power, agg.sp_centroid, agg.sp_total);

        SeriesContext {
            x,
            sorted: &self.sorted,
            diffs: &self.diffs,
            freqs: &self.freqs,
            power: &self.power,
            mags: &self.mags,
            wavelet: &self.wavelet,
            agg,
        }
    }
}

thread_local! {
    /// Per-thread scratch backing the allocating convenience APIs
    /// ([`FeatureCatalog::extract`]) and the rayon workers of
    /// [`FeatureCatalog::extract_mts`].
    static SCRATCH: std::cell::RefCell<FeatureScratch> =
        std::cell::RefCell::new(FeatureScratch::new());
}

/// Pre-computed per-series context shared by all feature evaluations, so a
/// 134-feature pass sorts/differences/transforms the series only once and
/// shares the scalar aggregates every kind would otherwise re-derive.
/// All views borrow from a [`FeatureScratch`].
struct SeriesContext<'a> {
    x: &'a [f64],
    sorted: &'a [f64],
    diffs: &'a [f64],
    freqs: &'a [f64],
    power: &'a [f64],
    mags: &'a [f64],
    wavelet: &'a [f64],
    agg: SeriesAggregates,
}

impl SeriesContext<'_> {
    fn eval(&self, kind: FeatureKind) -> f64 {
        use FeatureKind::*;
        let x = self.x;
        let a = &self.agg;
        let v = match kind {
            Mean => a.mean,
            Median => stats::quantile_sorted(self.sorted, 0.5),
            Std => a.std,
            Variance => a.variance,
            Min => {
                if x.is_empty() {
                    0.0
                } else {
                    self.sorted[0]
                }
            }
            Max => {
                if x.is_empty() {
                    0.0
                } else {
                    self.sorted[self.sorted.len() - 1]
                }
            }
            PeakToPeak => {
                if x.is_empty() {
                    0.0
                } else {
                    self.sorted[self.sorted.len() - 1] - self.sorted[0]
                }
            }
            Rms => {
                if x.is_empty() {
                    0.0
                } else {
                    (a.abs_energy / x.len() as f64).sqrt()
                }
            }
            Skewness => stats::skewness_with(x, a.mean, a.std),
            Kurtosis => stats::kurtosis_with(x, a.mean, a.std),
            Iqr => {
                stats::quantile_sorted(self.sorted, 0.75)
                    - stats::quantile_sorted(self.sorted, 0.25)
            }
            Mad => a.mad,
            MeanAbsDeviation => statistical::mean_abs_deviation_with(x, a.mean),
            AbsEnergy => a.abs_energy,
            Sum => a.sum,
            CoefVariation => statistical::coefficient_of_variation_with(a.mean, a.std),
            Quantile(p) => stats::quantile_sorted(self.sorted, p as f64 / 100.0),
            HistEntropy => {
                if a.hist_valid {
                    stats::histogram_entropy_from_counts(&a.hist, x.len())
                } else {
                    stats::histogram_entropy(x, HIST_BINS)
                }
            }
            CountAboveMean => statistical::count_above_mean_with(x, a.mean),
            CountBelowMean => statistical::count_below_mean_with(x, a.mean),
            ArgmaxRel | FirstLocMax => temporal::relative_location_of(x, a.fold_max, true),
            ArgminRel | FirstLocMin => temporal::relative_location_of(x, a.fold_min, true),
            LastLocMax => temporal::relative_location_of(x, a.fold_max, false),
            LastLocMin => temporal::relative_location_of(x, a.fold_min, false),
            TrimmedMean => stats::trimmed_mean_std_sorted(self.sorted, 0.05).0,
            HistBin(i) => {
                if a.hist_valid {
                    statistical::hist_bin_fraction_from_counts(&a.hist, i as usize, x.len())
                } else {
                    statistical::hist_bin_fraction(x, i as usize, HIST_BINS)
                }
            }
            MeanAbsDiff => {
                if x.len() < 2 {
                    0.0
                } else {
                    a.abs_diff_sum / (x.len() - 1) as f64
                }
            }
            MedianAbsDiff => a.median_abs_diff,
            MeanDiff => a.d_mean,
            MedianDiff => a.median_diff,
            SumAbsDiff => a.abs_diff_sum,
            MaxDiff => {
                if self.diffs.is_empty() {
                    0.0
                } else {
                    a.d_fold_max
                }
            }
            MinDiff => {
                if self.diffs.is_empty() {
                    0.0
                } else {
                    a.d_fold_min
                }
            }
            StdDiff => a.d_std,
            Slope => stats::slope_with(x, a.mean),
            ZeroCrossRate => temporal::zero_crossing_rate(x),
            MeanCrossRate => temporal::mean_crossing_rate_with(x, a.mean),
            PosTurning => temporal::positive_turning_points(x),
            NegTurning => temporal::negative_turning_points(x),
            PeakCount => temporal::peak_count(x, 0.0),
            TrapzArea => temporal::trapz(x),
            AbsTrapzArea => temporal::trapz_abs(x),
            TemporalCentroid => temporal::temporal_centroid_with(x, a.abs_energy),
            TotalEnergy => a.abs_energy / x.len().max(1) as f64,
            EntropyDiff => {
                if a.d_hist_valid {
                    stats::histogram_entropy_from_counts(&a.d_hist, self.diffs.len())
                } else {
                    stats::histogram_entropy(self.diffs, HIST_BINS)
                }
            }
            LongestStrikeAbove => temporal::longest_strike_above_mean_with(x, a.mean),
            LongestStrikeBelow => temporal::longest_strike_below_mean_with(x, a.mean),
            TimeReversalAsym => temporal::time_reversal_asymmetry(x, 1),
            C3 => temporal::c3(x, 1),
            CidCe => temporal::cid_ce_from_diffs(self.diffs),
            RatioBeyondSigma(r) => temporal::ratio_beyond_r_sigma_with(x, r as f64, a.mean, a.std),
            AutoCorr(l) => stats::autocorrelation_with(x, l as usize, a.mean, a.centered_sq),
            EnergyChunk(i) => temporal::energy_ratio_chunk_with(x, i as usize, 8, a.abs_energy),
            MaxPower => stats::max(self.power).max(0.0),
            FreqAtMaxPower => vecops::argmax(self.power)
                .map(|i| self.freqs[i])
                .unwrap_or(0.0),
            SpectralCentroid => a.sp_centroid,
            SpectralSpread => a.sp_spread,
            SpectralSkewness => spectral::skewness_with(
                self.freqs,
                self.power,
                a.sp_centroid,
                a.sp_spread,
                a.sp_total,
            ),
            SpectralKurtosis => spectral::kurtosis_with(
                self.freqs,
                self.power,
                a.sp_centroid,
                a.sp_spread,
                a.sp_total,
            ),
            SpectralEntropy => spectral::entropy_with(self.power, a.sp_total),
            SpectralSlope => spectral::slope(self.freqs, self.power),
            SpectralDecrease => spectral::decrease(self.power),
            SpectralRolloff(p) => {
                spectral::rolloff_with(self.freqs, self.power, p as f64 / 100.0, a.sp_total)
            }
            MedianFrequency => spectral::rolloff_with(self.freqs, self.power, 0.5, a.sp_total),
            FundamentalFrequency => spectral::fundamental_frequency(self.freqs, self.power),
            PowerBandwidth => (spectral::rolloff_with(self.freqs, self.power, 0.975, a.sp_total)
                - spectral::rolloff_with(self.freqs, self.power, 0.025, a.sp_total))
            .max(0.0),
            SpectralPosTurning => spectral::positive_turning_points(self.power),
            BandEnergy(i) => spectral::band_energy_with(self.power, i as usize, 10, a.sp_total),
            FftCoeff(i) => self.mags.get(i as usize).copied().unwrap_or(0.0),
            WaveletEnergy(l) => self.wavelet.get(l as usize).copied().unwrap_or(0.0),
            // One decomposition serves both wavelet families: the entropy
            // is derived from the energies already in the context.
            WaveletEntropy => dwt::wavelet_entropy_from_energies(self.wavelet),
        };
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }
}

/// An ordered, named feature set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeatureCatalog {
    kinds: Vec<FeatureKind>,
}

impl FeatureCatalog {
    /// The default 134-feature catalog (TSFEL-default-sized; paper §3.3).
    pub fn standard() -> Self {
        use FeatureKind::*;
        let mut kinds = vec![
            // statistical (38)
            Mean,
            Median,
            Std,
            Variance,
            Min,
            Max,
            PeakToPeak,
            Rms,
            Skewness,
            Kurtosis,
            Iqr,
            Mad,
            MeanAbsDeviation,
            AbsEnergy,
            Sum,
            CoefVariation,
        ];
        for p in [1u8, 5, 25, 75, 95, 99] {
            kinds.push(Quantile(p));
        }
        kinds.extend([
            HistEntropy,
            CountAboveMean,
            CountBelowMean,
            ArgmaxRel,
            ArgminRel,
            TrimmedMean,
        ]);
        for i in 0..10u8 {
            kinds.push(HistBin(i));
        }
        // temporal (44)
        kinds.extend([
            MeanAbsDiff,
            MedianAbsDiff,
            MeanDiff,
            MedianDiff,
            SumAbsDiff,
            MaxDiff,
            MinDiff,
            StdDiff,
            Slope,
            ZeroCrossRate,
            MeanCrossRate,
            PosTurning,
            NegTurning,
            PeakCount,
            TrapzArea,
            AbsTrapzArea,
            TemporalCentroid,
            TotalEnergy,
            EntropyDiff,
            LongestStrikeAbove,
            LongestStrikeBelow,
            FirstLocMax,
            FirstLocMin,
            LastLocMax,
            LastLocMin,
            TimeReversalAsym,
            C3,
            CidCe,
        ]);
        for r in [1u8, 2, 3] {
            kinds.push(RatioBeyondSigma(r));
        }
        for l in [1u8, 2, 3, 5, 10] {
            kinds.push(AutoCorr(l));
        }
        for i in 0..8u8 {
            kinds.push(EnergyChunk(i));
        }
        // spectral (52)
        kinds.extend([
            MaxPower,
            FreqAtMaxPower,
            SpectralCentroid,
            SpectralSpread,
            SpectralSkewness,
            SpectralKurtosis,
            SpectralEntropy,
            SpectralSlope,
            SpectralDecrease,
            SpectralRolloff(85),
            SpectralRolloff(95),
            MedianFrequency,
            FundamentalFrequency,
            PowerBandwidth,
            SpectralPosTurning,
        ]);
        for i in 0..10u8 {
            kinds.push(BandEnergy(i));
        }
        for i in 1..=21u8 {
            kinds.push(FftCoeff(i));
        }
        for l in 0..5u8 {
            kinds.push(WaveletEnergy(l));
        }
        kinds.push(WaveletEntropy);
        Self { kinds }
    }

    /// A compact 21-feature profile covering all three domains, for online
    /// pattern matching where extraction latency matters.
    pub fn compact() -> Self {
        use FeatureKind::*;
        Self {
            kinds: vec![
                Mean,
                Median,
                Std,
                Min,
                Max,
                Rms,
                Skewness,
                Kurtosis,
                Iqr,
                MeanAbsDiff,
                Slope,
                ZeroCrossRate,
                TemporalCentroid,
                CidCe,
                AutoCorr(1),
                MaxPower,
                SpectralCentroid,
                SpectralEntropy,
                MedianFrequency,
                WaveletEnergy(0),
                WaveletEntropy,
            ],
        }
    }

    /// Build from an explicit kind list.
    pub fn from_kinds(kinds: Vec<FeatureKind>) -> Self {
        Self { kinds }
    }

    /// Number of features per univariate series.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kinds in evaluation order.
    pub fn kinds(&self) -> &[FeatureKind] {
        &self.kinds
    }

    /// Feature names in evaluation order.
    pub fn names(&self) -> Vec<String> {
        self.kinds.iter().map(|k| k.name()).collect()
    }

    /// Count of features per domain `(statistical, temporal, spectral)`.
    pub fn domain_counts(&self) -> (usize, usize, usize) {
        let mut s = 0;
        let mut t = 0;
        let mut p = 0;
        for k in &self.kinds {
            match k.domain() {
                Domain::Statistical => s += 1,
                Domain::Temporal => t += 1,
                Domain::Spectral => p += 1,
            }
        }
        (s, t, p)
    }

    /// Evaluate every feature over one univariate series into a
    /// caller-provided slice of length [`FeatureCatalog::len`], reusing
    /// `scratch` for every derived view. The hot-loop form: repeat calls
    /// over same-length series perform no per-series buffer allocations
    /// beyond what individual feature arms transiently need.
    pub fn extract_into(
        &self,
        x: &[f64],
        sample_rate: f64,
        scratch: &mut FeatureScratch,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), self.kinds.len(), "output slice length");
        let robust = self.kinds.iter().any(|k| {
            matches!(
                k,
                FeatureKind::Mad | FeatureKind::MedianDiff | FeatureKind::MedianAbsDiff
            )
        });
        let ctx = scratch.prepare(x, sample_rate, robust);
        for (slot, &k) in out.iter_mut().zip(&self.kinds) {
            *slot = ctx.eval(k);
        }
    }

    /// Evaluate every feature over one univariate series.
    pub fn extract(&self, x: &[f64], sample_rate: f64) -> Vec<f64> {
        let mut out = vec![0.0; self.kinds.len()];
        SCRATCH.with(|s| self.extract_into(x, sample_rate, &mut s.borrow_mut(), &mut out));
        out
    }

    /// Evaluate over an MTS segment stored as a `T × M` matrix (rows are
    /// timestamps, columns are metrics): per-metric feature vectors are
    /// concatenated column-major, giving a fixed `M * len()` width
    /// regardless of segment length — exactly the property coarse-grained
    /// clustering needs. Metrics are processed in parallel, each rayon
    /// worker reusing its thread-local [`FeatureScratch`] and writing its
    /// block of the output directly (order-preserving by construction —
    /// chunk `c` of the output is metric `c`).
    pub fn extract_mts(&self, segment: &Matrix, sample_rate: f64) -> Vec<f64> {
        let m = segment.cols();
        let len = self.kinds.len();
        let mut out = vec![0.0; m * len];
        if len == 0 {
            return out;
        }
        out.par_chunks_mut(len).enumerate().for_each(|(c, chunk)| {
            SCRATCH.with(|s| {
                let scratch = &mut *s.borrow_mut();
                // Detach the column buffer so the rest of the scratch
                // can back the derived views; reattach afterwards so
                // its capacity survives to the next metric.
                let mut col = std::mem::take(&mut scratch.col);
                col.clear();
                for r in 0..segment.rows() {
                    col.push(segment[(r, c)]);
                }
                self.extract_into(&col, sample_rate, scratch, chunk);
                scratch.col = col;
            });
        });
        out
    }
}

impl Default for FeatureCatalog {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_has_134_features() {
        let c = FeatureCatalog::standard();
        assert_eq!(c.len(), 134, "paper §3.3: 134 features per metric");
        let (s, t, p) = c.domain_counts();
        assert_eq!(s + t + p, 134);
        assert!(
            s >= 30 && t >= 40 && p >= 40,
            "all domains represented: {s}/{t}/{p}"
        );
    }

    #[test]
    fn names_are_unique() {
        let c = FeatureCatalog::standard();
        let mut names = c.names();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate feature names");
    }

    #[test]
    fn extraction_is_finite_on_hostile_inputs() {
        let c = FeatureCatalog::standard();
        for x in [
            vec![],
            vec![1.0],
            vec![0.0, 0.0],
            vec![5.0; 100],
            vec![f64::MAX / 1e10, -f64::MAX / 1e10],
            (0..7).map(|i| i as f64).collect::<Vec<_>>(),
        ] {
            let f = c.extract(&x, 1.0);
            assert_eq!(f.len(), 134);
            assert!(
                f.iter().all(|v| v.is_finite()),
                "non-finite feature for {x:?}"
            );
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let c = FeatureCatalog::standard();
        let x: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.13).sin() * 3.0 + 1.0)
            .collect();
        assert_eq!(c.extract(&x, 0.5), c.extract(&x, 0.5));
    }

    #[test]
    fn mts_extraction_concatenates_per_metric() {
        let c = FeatureCatalog::compact();
        let seg = Matrix::from_fn(50, 3, |r, col| (r as f64 * (col + 1) as f64 * 0.1).sin());
        let f = c.extract_mts(&seg, 1.0);
        assert_eq!(f.len(), 3 * c.len());
        // First block equals the standalone extraction of column 0.
        let col0 = seg.col(0);
        assert_eq!(&f[..c.len()], &c.extract(&col0, 1.0)[..]);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_series() {
        let c = FeatureCatalog::standard();
        let mut scratch = FeatureScratch::new();
        let mut out = vec![0.0; c.len()];
        // Lengths deliberately shrink and grow so stale buffer contents
        // would surface as mismatches.
        for len in [200usize, 37, 64, 1, 0, 200] {
            let x: Vec<f64> = (0..len)
                .map(|i| (i as f64 * 0.13).sin() * 3.0 + 1.0)
                .collect();
            c.extract_into(&x, 0.5, &mut scratch, &mut out);
            let reference = c.extract(&x, 0.5);
            let bits = |v: &[f64]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out), bits(&reference), "len={len}");
        }
    }

    #[test]
    fn distinguishes_different_signals() {
        let c = FeatureCatalog::standard();
        let quiet: Vec<f64> = (0..256).map(|i| 0.01 * (i as f64 * 0.05).sin()).collect();
        let busy: Vec<f64> = (0..256)
            .map(|i| 5.0 * (i as f64 * 1.3).sin() + i as f64 * 0.1)
            .collect();
        let fq = c.extract(&quiet, 1.0);
        let fb = c.extract(&busy, 1.0);
        let dist: f64 = fq.iter().zip(&fb).map(|(a, b)| (a - b).abs()).sum();
        assert!(
            dist > 1.0,
            "feature vectors should separate distinct signals"
        );
    }

    #[test]
    fn compact_is_a_strict_subset_size() {
        let c = FeatureCatalog::compact();
        assert!(c.len() < FeatureCatalog::standard().len());
        assert_eq!(c.extract(&[1.0, 2.0, 3.0, 4.0], 1.0).len(), c.len());
    }

    #[test]
    fn kind_names_snake_case() {
        assert_eq!(FeatureKind::MeanAbsDiff.name(), "mean_abs_diff");
        assert_eq!(FeatureKind::Quantile(5).name(), "quantile_05");
        assert_eq!(FeatureKind::FftCoeff(3).name(), "fft_coeff_3");
    }

    /// Standalone (one-pass-per-kind) evaluation of the kinds whose eval
    /// arms now read shared aggregates — the pre-cache implementation,
    /// kept here as the bit-exactness oracle.
    fn standalone(
        x: &[f64],
        diffs: &[f64],
        freqs: &[f64],
        power: &[f64],
        k: FeatureKind,
    ) -> Option<f64> {
        use FeatureKind::*;
        Some(match k {
            Mean => stats::mean(x),
            Std => stats::std_dev(x),
            Variance => stats::variance(x),
            Rms => stats::rms(x),
            Skewness => stats::skewness(x),
            Kurtosis => stats::kurtosis(x),
            Mad => stats::mad(x),
            MeanAbsDeviation => statistical::mean_abs_deviation(x),
            AbsEnergy => statistical::abs_energy(x),
            Sum => x.iter().sum(),
            CoefVariation => statistical::coefficient_of_variation(x),
            HistEntropy => stats::histogram_entropy(x, 10),
            CountAboveMean => statistical::count_above_mean(x),
            CountBelowMean => statistical::count_below_mean(x),
            ArgmaxRel | FirstLocMax => temporal::first_location_of_max(x),
            ArgminRel | FirstLocMin => temporal::first_location_of_min(x),
            LastLocMax => temporal::last_location_of_max(x),
            LastLocMin => temporal::last_location_of_min(x),
            TrimmedMean => stats::trimmed_mean_std(x, 0.05).0,
            HistBin(i) => statistical::hist_bin_fraction(x, i as usize, 10),
            MeanAbsDiff => stats::mean_abs_change(x),
            MedianAbsDiff => {
                let a: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
                stats::median(&a)
            }
            MeanDiff => stats::mean(diffs),
            MedianDiff => stats::median(diffs),
            SumAbsDiff => diffs.iter().map(|d| d.abs()).sum(),
            MaxDiff => {
                if diffs.is_empty() {
                    0.0
                } else {
                    stats::max(diffs)
                }
            }
            MinDiff => {
                if diffs.is_empty() {
                    0.0
                } else {
                    stats::min(diffs)
                }
            }
            StdDiff => stats::std_dev(diffs),
            Slope => stats::slope(x),
            MeanCrossRate => temporal::mean_crossing_rate(x),
            AbsTrapzArea => temporal::trapz(&x.iter().map(|v| v.abs()).collect::<Vec<_>>()),
            TemporalCentroid => temporal::temporal_centroid(x),
            TotalEnergy => statistical::abs_energy(x) / x.len().max(1) as f64,
            EntropyDiff => stats::histogram_entropy(diffs, 10),
            LongestStrikeAbove => temporal::longest_strike_above_mean(x),
            LongestStrikeBelow => temporal::longest_strike_below_mean(x),
            CidCe => temporal::cid_ce(x),
            RatioBeyondSigma(r) => temporal::ratio_beyond_r_sigma(x, r as f64),
            AutoCorr(l) => stats::autocorrelation(x, l as usize),
            EnergyChunk(i) => temporal::energy_ratio_chunk(x, i as usize, 8),
            SpectralCentroid => spectral::centroid(freqs, power),
            SpectralSpread => spectral::spread(freqs, power),
            SpectralSkewness => spectral::skewness(freqs, power),
            SpectralKurtosis => spectral::kurtosis(freqs, power),
            SpectralEntropy => spectral::entropy(power),
            SpectralRolloff(p) => spectral::rolloff(freqs, power, p as f64 / 100.0),
            MedianFrequency => spectral::median_frequency(freqs, power),
            PowerBandwidth => spectral::power_bandwidth(freqs, power),
            BandEnergy(i) => spectral::band_energy(power, i as usize, 10),
            _ => return None,
        })
    }

    #[test]
    fn cached_arms_match_standalone_functions() {
        let c = FeatureCatalog::standard();
        let mut inputs: Vec<Vec<f64>> = vec![
            vec![],
            vec![2.5],
            vec![0.0, -0.0],
            vec![5.0; 64],
            (0..7).map(|i| i as f64).collect(),
        ];
        inputs.push(
            (0..120)
                .map(|i| (i as f64 * 0.37).sin() * 2.0 + 0.01 * i as f64)
                .collect(),
        );
        for x in &inputs {
            let got = c.extract(x, 1.0);
            // Rebuild the derived views exactly as the scratch does.
            let diffs = temporal::diffs(x);
            let (freqs, power) = if x.len() >= 2 {
                fft::power_spectrum(x, 1.0)
            } else {
                (vec![0.0], vec![0.0])
            };
            for (v, &k) in got.iter().zip(c.kinds()) {
                let Some(naive) = standalone(x, &diffs, &freqs, &power, k) else {
                    continue;
                };
                let naive = if naive.is_finite() { naive } else { 0.0 };
                assert_eq!(
                    v.to_bits(),
                    naive.to_bits(),
                    "{k:?} diverged on len {} ({v} vs {naive})",
                    x.len()
                );
            }
        }
    }
}
