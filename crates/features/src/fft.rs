//! Iterative radix-2 Cooley–Tukey FFT and Welch power spectral density.
//!
//! The spectral half of the feature catalog needs a power spectrum; TSFEL
//! gets one from scipy, we build our own. Inputs of non-power-of-two length
//! are zero-padded to the next power of two, which is the standard choice
//! for feature extraction (it changes resolution, not the spectral shape).

use std::cell::RefCell;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::rc::Rc;

/// A complex number as a bare `(re, im)` pair — all we need for the FFT.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    #[inline]
    pub fn zero() -> Self {
        Self { re: 0.0, im: 0.0 }
    }

    #[inline]
    #[allow(clippy::should_implement_trait)] // bare math helpers, not operator overloads
    pub fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    #[inline]
    #[allow(clippy::should_implement_trait)] // bare math helpers, not operator overloads
    pub fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }

    #[inline]
    #[allow(clippy::should_implement_trait)] // bare math helpers, not operator overloads
    pub fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }
}

/// Next power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Forward-transform twiddle factors for a size-`n` FFT, stage-major:
/// stage `len = 2, 4, …, n` contributes `len/2` entries. Generated with
/// the **same** `w = w.mul(wlen)` recurrence the butterfly loop used to
/// run inline, so cached and uncached transforms are bit-identical.
fn forward_twiddles(n: usize) -> Vec<Complex> {
    let mut t = Vec::with_capacity(n.saturating_sub(1));
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut w = Complex::new(1.0, 0.0);
        for _ in 0..len / 2 {
            t.push(w);
            w = w.mul(wlen);
        }
        len <<= 1;
    }
    t
}

thread_local! {
    /// Per-thread twiddle tables keyed by FFT size. The feature extractor
    /// hits a handful of sizes (one per distinct segment length), so the
    /// map stays tiny while every repeat transform skips the per-butterfly
    /// `sin`/`cos` recurrence bookkeeping.
    static TWIDDLES: RefCell<HashMap<usize, Rc<Vec<Complex>>>> = RefCell::new(HashMap::new());
}

/// Fetch (building on first use) the cached forward twiddle table for
/// size `n`.
fn cached_twiddles(n: usize) -> Rc<Vec<Complex>> {
    TWIDDLES.with(|cell| {
        Rc::clone(
            cell.borrow_mut()
                .entry(n)
                .or_insert_with(|| Rc::new(forward_twiddles(n))),
        )
    })
}

/// Bit-reversal permutation shared by all transform variants.
fn bit_reverse(buf: &mut [Complex]) {
    let n = buf.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
}

/// In-place iterative radix-2 FFT. `buf.len()` must be a power of two.
/// `inverse` selects the inverse transform (including the 1/n scaling).
/// Forward transforms use the per-thread twiddle cache.
pub fn fft_in_place(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(
        n.is_power_of_two(),
        "fft length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }
    if !inverse {
        let table = cached_twiddles(n);
        bit_reverse(buf);
        let mut off = 0usize;
        let mut len = 2;
        while len <= n {
            let stage = &table[off..off + len / 2];
            let mut i = 0;
            while i < n {
                for (k, &w) in stage.iter().enumerate() {
                    let u = buf[i + k];
                    let v = buf[i + k + len / 2].mul(w);
                    buf[i + k] = u.add(v);
                    buf[i + k + len / 2] = u.sub(v);
                }
                i += len;
            }
            off += len / 2;
            len <<= 1;
        }
        return;
    }
    bit_reverse(buf);
    // Butterfly passes with inline twiddle recurrence (inverse transforms
    // are off the hot path — round-trip tests and nothing else).
    let mut len = 2;
    while len <= n {
        let ang = 2.0 * PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2].mul(w);
                buf[i + k] = u.add(v);
                buf[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
    let inv = 1.0 / n as f64;
    for c in buf.iter_mut() {
        c.re *= inv;
        c.im *= inv;
    }
}

/// Forward FFT of a real signal into a caller-owned buffer (cleared and
/// refilled), zero-padded to the next power of two. Reusing the buffer
/// across calls keeps repeat extraction allocation-free.
pub fn rfft_into(x: &[f64], buf: &mut Vec<Complex>) {
    let n = next_pow2(x.len());
    buf.clear();
    buf.extend(x.iter().map(|&v| Complex::new(v, 0.0)));
    buf.resize(n, Complex::zero());
    fft_in_place(buf, false);
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum of length `next_pow2(x.len())`.
pub fn rfft(x: &[f64]) -> Vec<Complex> {
    let mut buf = Vec::new();
    rfft_into(x, &mut buf);
    buf
}

/// One FFT, every spectral view: fills `freqs`/`power` (one-sided power
/// spectrum, as [`power_spectrum`]) and `mags` (one-sided magnitude
/// spectrum, as [`magnitude_spectrum`]) from a single transform of `x`
/// held in `buf`. Bit-identical to calling the two standalone functions —
/// they each run the same deterministic FFT on the same input.
pub fn spectra_into(
    x: &[f64],
    sample_rate: f64,
    buf: &mut Vec<Complex>,
    freqs: &mut Vec<f64>,
    power: &mut Vec<f64>,
    mags: &mut Vec<f64>,
) {
    rfft_into(x, buf);
    let n = buf.len();
    let half = n / 2;
    let scale = 1.0 / (n as f64 * n as f64);
    freqs.clear();
    power.clear();
    mags.clear();
    for (i, c) in buf[..=half].iter().enumerate() {
        freqs.push(i as f64 * sample_rate / n as f64);
        let mult = if i == 0 || i == half { 1.0 } else { 2.0 };
        power.push(mult * c.norm_sq() * scale);
        mags.push(c.abs());
    }
}

/// One-sided magnitude spectrum (bins `0..=n/2`) of a real signal.
pub fn magnitude_spectrum(x: &[f64]) -> Vec<f64> {
    let spec = rfft(x);
    let half = spec.len() / 2;
    spec[..=half].iter().map(|c| c.abs()).collect()
}

/// One-sided power spectrum with matching frequency axis.
///
/// `sample_rate` is in Hz (for our telemetry: `1 / sampling_interval_s`).
/// Returns `(freqs, power)` with `freqs[i] = i * fs / n`.
pub fn power_spectrum(x: &[f64], sample_rate: f64) -> (Vec<f64>, Vec<f64>) {
    let spec = rfft(x);
    let n = spec.len();
    let half = n / 2;
    let scale = 1.0 / (n as f64 * n as f64);
    let mut freqs = Vec::with_capacity(half + 1);
    let mut power = Vec::with_capacity(half + 1);
    for (i, c) in spec[..=half].iter().enumerate() {
        freqs.push(i as f64 * sample_rate / n as f64);
        // One-sided: interior bins pick up the mirrored energy.
        let mult = if i == 0 || i == half { 1.0 } else { 2.0 };
        power.push(mult * c.norm_sq() * scale);
    }
    (freqs, power)
}

thread_local! {
    /// Per-thread Hann windows keyed by segment length.
    static HANN: RefCell<HashMap<usize, Rc<Vec<f64>>>> = RefCell::new(HashMap::new());
}

/// Fetch (building on first use) the cached Hann window of length
/// `seg_len`: `w[i] = 0.5 − 0.5·cos(2πi / seg_len)`.
fn cached_hann(seg_len: usize) -> Rc<Vec<f64>> {
    HANN.with(|cell| {
        Rc::clone(cell.borrow_mut().entry(seg_len).or_insert_with(|| {
            Rc::new(
                (0..seg_len)
                    .map(|i| 0.5 - 0.5 * (2.0 * PI * i as f64 / seg_len as f64).cos())
                    .collect(),
            )
        }))
    })
}

/// Welch PSD estimate: Hann-windowed overlapping segments, averaged.
///
/// `nperseg` is clamped to the signal length; 50% overlap. Returns
/// `(freqs, psd)`. Degenerate inputs produce a single zero bin.
pub fn welch_psd(x: &[f64], sample_rate: f64, nperseg: usize) -> (Vec<f64>, Vec<f64>) {
    if x.is_empty() {
        return (vec![0.0], vec![0.0]);
    }
    let seg_len = nperseg.clamp(2, x.len().max(2)).min(x.len().max(2));
    let step = (seg_len / 2).max(1);
    let nfft = next_pow2(seg_len);
    let half = nfft / 2;

    // Hann window (cached per thread by segment length) and its power
    // normalisation.
    let window = cached_hann(seg_len);
    let win_power: f64 = window.iter().map(|w| w * w).sum();

    let mut acc = vec![0.0f64; half + 1];
    let mut buf: Vec<Complex> = Vec::with_capacity(nfft);
    let mut count = 0usize;
    let mut start = 0usize;
    while start + seg_len <= x.len() {
        buf.clear();
        buf.extend((0..seg_len).map(|i| Complex::new(x[start + i] * window[i], 0.0)));
        buf.resize(nfft, Complex::zero());
        fft_in_place(&mut buf, false);
        for (i, slot) in acc.iter_mut().enumerate() {
            let mult = if i == 0 || i == half { 1.0 } else { 2.0 };
            *slot += mult * buf[i].norm_sq() / (sample_rate * win_power);
        }
        count += 1;
        if start + seg_len == x.len() {
            break;
        }
        start += step;
    }
    if count == 0 {
        // Signal shorter than one segment: single padded segment.
        buf.clear();
        buf.extend(x.iter().map(|&v| Complex::new(v, 0.0)));
        buf.resize(nfft, Complex::zero());
        fft_in_place(&mut buf, false);
        for (i, slot) in acc.iter_mut().enumerate() {
            *slot += buf[i].norm_sq() / (sample_rate * seg_len as f64);
        }
        count = 1;
    }
    let freqs: Vec<f64> = (0..=half)
        .map(|i| i as f64 * sample_rate / nfft as f64)
        .collect();
    let psd: Vec<f64> = acc.into_iter().map(|v| v / count as f64).collect();
    (freqs, psd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_roundtrip_recovers_signal() {
        let x: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.3).sin() + 0.1 * i as f64)
            .collect();
        let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft_in_place(&mut buf, false);
        fft_in_place(&mut buf, true);
        for (c, &v) in buf.iter().zip(&x) {
            assert!((c.re - v).abs() < 1e-9);
            assert!(c.im.abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_theorem_holds() {
        let x: Vec<f64> = (0..128).map(|i| ((i * 37 % 11) as f64) - 5.0).collect();
        let spec = rfft(&x);
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sq()).sum::<f64>() / spec.len() as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn pure_tone_peaks_at_its_bin() {
        let n = 256;
        let fs = 1.0;
        let k = 16; // 16 cycles over n samples → bin 16
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k as f64 * i as f64 / n as f64).sin())
            .collect();
        let (freqs, power) = power_spectrum(&x, fs);
        let peak = power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, k);
        assert!((freqs[peak] - k as f64 / n as f64).abs() < 1e-12);
        // Total one-sided power ≈ signal variance (0.5 for a unit sine).
        let total: f64 = power.iter().sum();
        assert!(
            (total - 0.5).abs() < 1e-6,
            "total one-sided power was {total}"
        );
    }

    #[test]
    fn dc_signal_has_all_power_at_zero() {
        let x = vec![3.0; 64];
        let (_, power) = power_spectrum(&x, 1.0);
        assert!((power[0] - 9.0).abs() < 1e-9);
        assert!(power[1..].iter().all(|&p| p < 1e-12));
    }

    #[test]
    fn zero_padding_keeps_peak_location() {
        // 100 samples (non power of two) of a 10-cycle tone.
        let n = 100;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 10.0 * i as f64 / n as f64).sin())
            .collect();
        let (freqs, power) = power_spectrum(&x, 1.0);
        let peak = power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        // True frequency is 0.1; padded resolution is 1/128.
        assert!((freqs[peak] - 0.1).abs() < 1.5 / 128.0);
    }

    #[test]
    fn welch_psd_localizes_tone() {
        let n = 512;
        let f0 = 0.125;
        let x: Vec<f64> = (0..n).map(|i| (2.0 * PI * f0 * i as f64).sin()).collect();
        let (freqs, psd) = welch_psd(&x, 1.0, 128);
        let peak = psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((freqs[peak] - f0).abs() < 0.02, "peak at {}", freqs[peak]);
    }

    #[test]
    fn welch_handles_short_signals() {
        let (f, p) = welch_psd(&[1.0, 2.0, 3.0], 1.0, 256);
        assert_eq!(f.len(), p.len());
        assert!(p.iter().all(|v| v.is_finite()));
        let (f2, p2) = welch_psd(&[], 1.0, 64);
        assert_eq!(f2.len(), 1);
        assert_eq!(p2[0], 0.0);
    }

    #[test]
    fn fft_size_one_is_identity() {
        let mut buf = [Complex::new(5.0, -1.0)];
        fft_in_place(&mut buf, false);
        assert_eq!(buf[0], Complex::new(5.0, -1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_pow2() {
        let mut buf = vec![Complex::zero(); 12];
        fft_in_place(&mut buf, false);
    }
}
