//! Haar discrete wavelet transform, used for the wavelet-energy features of
//! the spectral catalog family.

/// One level of the Haar DWT: returns `(approximation, detail)` halves.
/// Odd-length inputs drop the final sample (standard truncation).
pub fn haar_step(x: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let pairs = x.len() / 2;
    let mut approx = Vec::with_capacity(pairs);
    let mut detail = Vec::with_capacity(pairs);
    let s = std::f64::consts::FRAC_1_SQRT_2;
    for k in 0..pairs {
        let a = x[2 * k];
        let b = x[2 * k + 1];
        approx.push((a + b) * s);
        detail.push((a - b) * s);
    }
    (approx, detail)
}

/// Multi-level Haar decomposition. Returns the detail coefficients for each
/// level (finest first) and the final approximation. Stops early when the
/// signal can no longer be halved.
pub fn haar_decompose(x: &[f64], levels: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut details = Vec::with_capacity(levels);
    let mut current = x.to_vec();
    for _ in 0..levels {
        if current.len() < 2 {
            break;
        }
        let (a, d) = haar_step(&current);
        details.push(d);
        current = a;
    }
    (details, current)
}

/// Relative energy captured in each detail level (finest first), padded with
/// zeros up to `levels`. Energies are normalised by total input energy, so
/// they sum to ≤ 1 (the remainder sits in the approximation).
pub fn wavelet_energies(x: &[f64], levels: usize) -> Vec<f64> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    wavelet_energies_into(x, levels, &mut out, &mut cur);
    out
}

/// Allocation-reusing form of [`wavelet_energies`]: `out` receives the
/// per-level energies, `cur` is working storage for the cascading
/// approximation. Each Haar level is computed in place — detail energy
/// accumulated on the fly, approximation written back over the front of
/// `cur` — so no per-level buffers are materialised. Bit-identical to the
/// decompose-then-sum formulation: the per-level energy sums the squared
/// details in the same left-to-right order.
pub fn wavelet_energies_into(x: &[f64], levels: usize, out: &mut Vec<f64>, cur: &mut Vec<f64>) {
    out.clear();
    out.resize(levels, 0.0);
    let total: f64 = x.iter().map(|v| v * v).sum();
    if total < 1e-24 {
        return;
    }
    cur.clear();
    cur.extend_from_slice(x);
    let s = std::f64::consts::FRAC_1_SQRT_2;
    for slot in out.iter_mut() {
        if cur.len() < 2 {
            break;
        }
        let pairs = cur.len() / 2;
        let mut energy = 0.0;
        for k in 0..pairs {
            // Reads (2k, 2k+1) stay ahead of the write at k.
            let a = cur[2 * k];
            let b = cur[2 * k + 1];
            let d = (a - b) * s;
            energy += d * d;
            cur[k] = (a + b) * s;
        }
        cur.truncate(pairs);
        *slot = energy / total;
    }
}

/// Shannon entropy of the normalised per-level wavelet energy distribution
/// (detail levels plus the approximation remainder).
pub fn wavelet_entropy(x: &[f64], levels: usize) -> f64 {
    wavelet_entropy_from_energies(&wavelet_energies(x, levels))
}

/// [`wavelet_entropy`] over already-computed [`wavelet_energies`] output,
/// so callers holding the energies (e.g. the feature catalog, which needs
/// both) skip a second full decomposition.
pub fn wavelet_entropy_from_energies(energies: &[f64]) -> f64 {
    let detail_sum: f64 = energies.iter().sum();
    let rem = (1.0 - detail_sum).max(0.0); // approximation remainder
    let s = detail_sum + rem;
    if s < 1e-24 {
        return 0.0;
    }
    energies
        .iter()
        .chain(std::iter::once(&rem))
        .filter(|&&p| p > 1e-15)
        .map(|&p| {
            let q = p / s;
            -q * q.ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haar_step_preserves_energy() {
        let x = [1.0, 3.0, -2.0, 0.5, 4.0, 4.0];
        let (a, d) = haar_step(&x);
        let e_in: f64 = x.iter().map(|v| v * v).sum();
        let e_out: f64 = a.iter().chain(&d).map(|v| v * v).sum();
        assert!((e_in - e_out).abs() < 1e-12);
    }

    #[test]
    fn constant_signal_has_zero_detail() {
        let x = [5.0; 16];
        let (details, approx) = haar_decompose(&x, 4);
        for d in &details {
            assert!(d.iter().all(|&v| v.abs() < 1e-12));
        }
        assert_eq!(approx.len(), 1);
        // 4 levels of +/sqrt2 scaling: 5 * 2^(4/2) = 20.
        assert!((approx[0] - 20.0).abs() < 1e-12);
    }

    #[test]
    fn alternating_signal_energy_in_finest_level() {
        let x: Vec<f64> = (0..32)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let e = wavelet_energies(&x, 4);
        assert!((e[0] - 1.0).abs() < 1e-12);
        assert!(e[1..].iter().all(|&v| v < 1e-12));
    }

    #[test]
    fn energies_sum_below_one() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.17).sin() + 0.3).collect();
        let e = wavelet_energies(&x, 5);
        let s: f64 = e.iter().sum();
        assert!(s <= 1.0 + 1e-12);
        assert!(e.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn entropy_degenerate_cases() {
        assert_eq!(wavelet_entropy(&[0.0; 16], 4), 0.0);
        // Concentrated energy → low entropy; mixed signal → higher.
        let alt: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let mixed: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.9).sin() + (i as f64 * 0.1).sin())
            .collect();
        assert!(wavelet_entropy(&alt, 5) < wavelet_entropy(&mixed, 5));
    }

    #[test]
    fn in_place_energies_bit_identical_to_decompose() {
        let signals: Vec<Vec<f64>> = vec![
            (0..64).map(|i| (i as f64 * 0.17).sin() + 0.3).collect(),
            (0..37).map(|i| ((i * 7919 % 101) as f64) - 50.0).collect(),
            vec![0.0; 16],
            vec![2.0],
        ];
        for x in signals {
            // Reference: the original decompose-then-sum formulation.
            let total: f64 = x.iter().map(|v| v * v).sum();
            let (details, _) = haar_decompose(&x, 5);
            let mut reference = vec![0.0; 5];
            if total >= 1e-24 {
                for (l, d) in details.iter().enumerate() {
                    reference[l] = d.iter().map(|v| v * v).sum::<f64>() / total;
                }
            }
            let fast = wavelet_energies(&x, 5);
            let bits = |v: &[f64]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&fast), bits(&reference), "x={x:?}");
            assert_eq!(
                wavelet_entropy(&x, 5).to_bits(),
                wavelet_entropy_from_energies(&fast).to_bits()
            );
        }
    }

    #[test]
    fn short_inputs_truncate_gracefully() {
        let (details, approx) = haar_decompose(&[1.0], 3);
        assert!(details.is_empty());
        assert_eq!(approx, vec![1.0]);
        let e = wavelet_energies(&[2.0], 3);
        assert_eq!(e, vec![0.0, 0.0, 0.0]);
    }
}
