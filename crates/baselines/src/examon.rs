//! ExaMon / Borghesi et al. (TPDS '21): per-node dense autoencoders on
//! instantaneous metric vectors. We implement the unsupervised
//! reconstruction component (the paper's comparison protocol, §4.1.2,
//! selects exactly this part).

use crate::common::Detector;
use ns_linalg::matrix::Matrix;
use ns_nn::{Adam, Graph, Linear, ParamStore};
use rayon::prelude::*;

/// Configuration.
#[derive(Clone, Debug)]
pub struct ExamonConfig {
    pub hidden: usize,
    pub bottleneck: usize,
    pub epochs: usize,
    pub lr: f64,
    /// Training rows per node are subsampled to this cap.
    pub max_rows_per_node: usize,
    pub seed: u64,
}

impl Default for ExamonConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            bottleneck: 8,
            epochs: 120,
            lr: 3e-3,
            max_rows_per_node: 1200,
            seed: 11,
        }
    }
}

struct NodeAe {
    params: ParamStore,
    enc1: Linear,
    enc2: Linear,
    dec1: Linear,
    dec2: Linear,
}

impl NodeAe {
    fn reconstruct(&self, data: &Matrix) -> Matrix {
        let mut g = Graph::new(&self.params);
        let x = g.input(data.clone());
        let h1 = self.enc1.forward(&mut g, x);
        let a1 = g.relu(h1);
        let z = self.enc2.forward(&mut g, a1);
        let h2 = self.dec1.forward(&mut g, z);
        let a2 = g.relu(h2);
        let out = self.dec2.forward(&mut g, a2);
        g.value(out).clone()
    }
}

/// Per-node dense autoencoders.
pub struct Examon {
    cfg: ExamonConfig,
    models: Vec<NodeAe>,
}

impl Examon {
    pub fn new(cfg: ExamonConfig) -> Self {
        Self {
            cfg,
            models: Vec::new(),
        }
    }
}

impl Default for Examon {
    fn default() -> Self {
        Self::new(ExamonConfig::default())
    }
}

impl Detector for Examon {
    fn name(&self) -> &'static str {
        "ExaMon"
    }

    fn fit(&mut self, nodes: &[Matrix], split: usize) {
        let cfg = self.cfg.clone();
        self.models = nodes
            .par_iter()
            .enumerate()
            .map(|(idx, node)| {
                let upto = split.min(node.rows());
                let mut train = node.slice_rows(0, upto);
                if train.rows() > cfg.max_rows_per_node {
                    let stride = train.rows() / cfg.max_rows_per_node + 1;
                    let idxs: Vec<usize> = (0..train.rows()).step_by(stride).collect();
                    train = train.gather_rows(&idxs);
                }
                let dim = train.cols();
                let mut params = ParamStore::new(cfg.seed ^ (idx as u64) << 4);
                let enc1 = Linear::new(&mut params, "e1", dim, cfg.hidden);
                let enc2 = Linear::new(&mut params, "e2", cfg.hidden, cfg.bottleneck);
                let dec1 = Linear::new(&mut params, "d1", cfg.bottleneck, cfg.hidden);
                let dec2 = Linear::new(&mut params, "d2", cfg.hidden, dim);
                let mut opt = Adam::new(cfg.lr);
                for _ in 0..cfg.epochs {
                    let grads = {
                        let mut g = Graph::new(&params);
                        let x = g.input(train.clone());
                        let h1 = enc1.forward(&mut g, x);
                        let a1 = g.relu(h1);
                        let z = enc2.forward(&mut g, a1);
                        let h2 = dec1.forward(&mut g, z);
                        let a2 = g.relu(h2);
                        let out = dec2.forward(&mut g, a2);
                        let l = g.mse(out, x);
                        g.backward(l)
                    };
                    opt.step(&mut params, &grads);
                }
                NodeAe {
                    params,
                    enc1,
                    enc2,
                    dec1,
                    dec2,
                }
            })
            .collect();
    }

    fn score_node(&self, node_idx: usize, data: &Matrix, split: usize) -> Vec<f64> {
        let model = self.models.get(node_idx).expect("fit before score");
        let test = data.slice_rows(split.min(data.rows()), data.rows());
        if test.rows() == 0 {
            return Vec::new();
        }
        let recon = model.reconstruct(&test);
        (0..test.rows())
            .map(|r| {
                test.row(r)
                    .iter()
                    .zip(recon.row(r))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    / test.cols().max(1) as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointwise_scores_spike_on_outliers() {
        let mut node = Matrix::from_fn(300, 3, |t, m| ((t as f64) * 0.2 + m as f64).sin());
        node[(250, 0)] = 8.0;
        node[(250, 1)] = -8.0;
        let nodes = vec![node];
        let mut det = Examon::default();
        det.fit(&nodes, 200);
        let scores = det.score_node(0, &nodes[0], 200);
        assert_eq!(scores.len(), 100);
        let spike = scores[50];
        let typical: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!(spike > 5.0 * typical, "spike {spike} vs typical {typical}");
    }

    #[test]
    fn one_model_per_node() {
        let nodes: Vec<Matrix> = (0..3)
            .map(|n| Matrix::from_fn(100, 2, |t, _| (t + n) as f64 * 0.01))
            .collect();
        let mut det = Examon::new(ExamonConfig {
            epochs: 5,
            ..Default::default()
        });
        det.fit(&nodes, 60);
        assert_eq!(det.models.len(), 3);
    }
}
