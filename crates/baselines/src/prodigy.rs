//! Prodigy (Aksar et al., SC '23): unsupervised anomaly detection via a
//! variational autoencoder over per-window feature summaries. One global
//! model shared by all nodes; no job awareness — which is exactly why it
//! struggles with HPC sub-pattern diversity (paper §6).

use crate::common::{spread_window_scores, window_starts, window_summary, Detector};
use ns_linalg::matrix::Matrix;
use ns_nn::vae::{standard_normal, Vae};
use ns_nn::{Adam, Graph, ParamStore};

/// Configuration.
#[derive(Clone, Debug)]
pub struct ProdigyConfig {
    pub window: usize,
    pub hidden: usize,
    pub latent: usize,
    pub epochs: usize,
    pub lr: f64,
    pub beta: f64,
    /// Cap on training windows (subsampled uniformly beyond this).
    pub max_train_windows: usize,
    pub seed: u64,
}

impl Default for ProdigyConfig {
    fn default() -> Self {
        Self {
            window: 20,
            hidden: 48,
            latent: 8,
            epochs: 60,
            lr: 2e-3,
            beta: 1e-3,
            max_train_windows: 1500,
            seed: 3,
        }
    }
}

/// The fitted detector.
pub struct Prodigy {
    cfg: ProdigyConfig,
    state: Option<(ParamStore, Vae)>,
}

impl Prodigy {
    pub fn new(cfg: ProdigyConfig) -> Self {
        Self { cfg, state: None }
    }
}

impl Default for Prodigy {
    fn default() -> Self {
        Self::new(ProdigyConfig::default())
    }
}

impl Detector for Prodigy {
    fn name(&self) -> &'static str {
        "Prodigy"
    }

    fn fit(&mut self, nodes: &[Matrix], split: usize) {
        // Collect per-window summaries across all nodes' training spans.
        let mut feats: Vec<Vec<f64>> = Vec::new();
        for node in nodes {
            let upto = split.min(node.rows());
            let train = node.slice_rows(0, upto);
            for s in window_starts(train.rows(), self.cfg.window) {
                let win = train.slice_rows(s, (s + self.cfg.window).min(train.rows()));
                feats.push(window_summary(&win));
            }
        }
        assert!(!feats.is_empty(), "no training windows");
        if feats.len() > self.cfg.max_train_windows {
            let stride = feats.len() / self.cfg.max_train_windows + 1;
            feats = feats.into_iter().step_by(stride).collect();
        }
        let dim = feats[0].len();
        let data = Matrix::from_rows(&feats);
        let mut params = ParamStore::new(self.cfg.seed);
        let vae = Vae::new(
            &mut params,
            "prodigy",
            dim,
            self.cfg.hidden,
            self.cfg.latent,
        );
        let mut opt = Adam::new(self.cfg.lr);
        for epoch in 0..self.cfg.epochs {
            let eps = standard_normal(data.rows(), self.cfg.latent, self.cfg.seed ^ epoch as u64);
            let grads = {
                let mut g = Graph::new(&params);
                let x = g.input(data.clone());
                let l = vae.loss(&mut g, x, &eps, self.cfg.beta);
                g.backward(l)
            };
            opt.step(&mut params, &grads);
        }
        self.state = Some((params, vae));
    }

    fn score_node(&self, _node_idx: usize, data: &Matrix, split: usize) -> Vec<f64> {
        let (params, vae) = self.state.as_ref().expect("fit before score");
        let test = data.slice_rows(split.min(data.rows()), data.rows());
        let len = test.rows();
        if len == 0 {
            return Vec::new();
        }
        let starts = window_starts(len, self.cfg.window);
        let feats: Vec<Vec<f64>> = starts
            .iter()
            .map(|&s| {
                let win = test.slice_rows(s, (s + self.cfg.window).min(len));
                window_summary(&win)
            })
            .collect();
        let fm = Matrix::from_rows(&feats);
        let errs = vae.reconstruction_errors(params, &fm);
        spread_window_scores(len, self.cfg.window, &starts, &errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_with_anomaly() -> (Vec<Matrix>, usize, usize, usize) {
        let horizon = 400;
        let split = 240;
        let (a0, a1) = (320, 360);
        let node = Matrix::from_fn(horizon, 4, |t, m| {
            let base = ((t as f64) * 0.25 + m as f64).sin();
            if (a0..a1).contains(&t) {
                base + 4.0
            } else {
                base
            }
        });
        (vec![node], split, a0, a1)
    }

    #[test]
    fn prodigy_scores_anomaly_above_normal() {
        let (nodes, split, a0, a1) = node_with_anomaly();
        let mut det = Prodigy::new(ProdigyConfig {
            epochs: 80,
            ..Default::default()
        });
        det.fit(&nodes, split);
        let scores = det.score_node(0, &nodes[0], split);
        assert_eq!(scores.len(), nodes[0].rows() - split);
        let anom: f64 = scores[a0 - split..a1 - split].iter().sum::<f64>() / (a1 - a0) as f64;
        let norm: f64 = scores[..a0 - split].iter().sum::<f64>() / (a0 - split) as f64;
        assert!(anom > 2.0 * norm, "anom {anom} vs norm {norm}");
    }

    #[test]
    #[should_panic(expected = "fit before score")]
    fn scoring_unfitted_panics() {
        let det = Prodigy::default();
        let m = Matrix::zeros(10, 2);
        det.score_node(0, &m, 0);
    }
}
