//! `ns-baselines` — the four baseline detectors NodeSentry is compared
//! against in Table 4, re-implemented from scratch on the workspace's
//! own substrates:
//!
//! * [`prodigy`] — Prodigy (SC '23): global VAE over per-window feature
//!   summaries.
//! * [`ruad`] — RUAD (FGCS '23): one LSTM autoencoder per node.
//! * [`examon`] — ExaMon (TPDS '21): per-node dense autoencoders (the
//!   unsupervised component, per the paper's comparison protocol).
//! * [`isc20`] — ISC'20: Bayesian Gaussian mixture + Mahalanobis
//!   distance.
//!
//! All implement the [`Detector`] trait over preprocessed node matrices,
//! so every method sees identical inputs and the same downstream
//! thresholding — the comparison isolates the detection strategy.

pub mod common;
pub mod examon;
pub mod isc20;
pub mod prodigy;
pub mod ruad;

pub use common::Detector;
pub use examon::{Examon, ExamonConfig};
pub use isc20::{Isc20, Isc20Config};
pub use prodigy::{Prodigy, ProdigyConfig};
pub use ruad::{Ruad, RuadConfig};
