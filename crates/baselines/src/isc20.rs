//! ISC'20 (Ozer et al.): characterising HPC performance variation with a
//! Bayesian Gaussian Mixture Model and flagging anomalies by Mahalanobis
//! distance to the nearest component. Cheapest to train (no deep model),
//! weakest at modelling MTS dynamics — matching its Table 4 position.

use crate::common::Detector;
use ns_cluster::gmm::{Covariance, GaussianMixture, GmmConfig};
use ns_linalg::matrix::Matrix;

/// Configuration.
#[derive(Clone, Debug)]
pub struct Isc20Config {
    pub n_components: usize,
    pub max_iter: usize,
    /// Dirichlet weight prior (the "Bayesian" in BGMM).
    pub weight_prior: f64,
    /// Training rows subsampled to this cap across all nodes.
    pub max_rows: usize,
    pub seed: u64,
}

impl Default for Isc20Config {
    fn default() -> Self {
        Self {
            n_components: 6,
            max_iter: 60,
            weight_prior: 5.0,
            max_rows: 4000,
            seed: 13,
        }
    }
}

/// The fitted detector.
pub struct Isc20 {
    cfg: Isc20Config,
    model: Option<GaussianMixture>,
}

impl Isc20 {
    pub fn new(cfg: Isc20Config) -> Self {
        Self { cfg, model: None }
    }
}

impl Default for Isc20 {
    fn default() -> Self {
        Self::new(Isc20Config::default())
    }
}

impl Detector for Isc20 {
    fn name(&self) -> &'static str {
        "ISC 20"
    }

    fn fit(&mut self, nodes: &[Matrix], split: usize) {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for node in nodes {
            let upto = split.min(node.rows());
            for r in 0..upto {
                rows.push(node.row(r).to_vec());
            }
        }
        assert!(!rows.is_empty(), "no training rows");
        if rows.len() > self.cfg.max_rows {
            let stride = rows.len() / self.cfg.max_rows + 1;
            rows = rows.into_iter().step_by(stride).collect();
        }
        let gmm = GaussianMixture::fit(
            &rows,
            &GmmConfig {
                n_components: self.cfg.n_components,
                covariance: Covariance::Diagonal,
                max_iter: self.cfg.max_iter,
                weight_prior: self.cfg.weight_prior,
                seed: self.cfg.seed,
                ..Default::default()
            },
        );
        self.model = Some(gmm);
    }

    fn score_node(&self, _node_idx: usize, data: &Matrix, split: usize) -> Vec<f64> {
        let gmm = self.model.as_ref().expect("fit before score");
        let test = data.slice_rows(split.min(data.rows()), data.rows());
        (0..test.rows())
            .map(|r| gmm.min_mahalanobis(test.row(r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mahalanobis_flags_off_manifold_points() {
        let mut node = Matrix::from_fn(400, 3, |t, m| {
            ((t as f64) * 0.15 + m as f64).sin() * 0.5 + m as f64 * 0.1
        });
        for t in 330..350 {
            node[(t, 0)] += 6.0;
        }
        let nodes = vec![node];
        let mut det = Isc20::default();
        det.fit(&nodes, 250);
        let scores = det.score_node(0, &nodes[0], 250);
        assert_eq!(scores.len(), 150);
        let anom: f64 = scores[80..100].iter().sum::<f64>() / 20.0;
        let norm: f64 = scores[..80].iter().sum::<f64>() / 80.0;
        assert!(anom > 2.0 * norm, "anom {anom} vs norm {norm}");
    }

    #[test]
    fn training_is_fast_relative_to_data() {
        // Structural check: fitting must subsample to the configured cap.
        let nodes: Vec<Matrix> = (0..4)
            .map(|n| Matrix::from_fn(3000, 2, |t, _| ((t * (n + 1)) as f64 * 0.01).sin()))
            .collect();
        let mut det = Isc20::new(Isc20Config {
            max_rows: 500,
            max_iter: 10,
            ..Default::default()
        });
        det.fit(&nodes, 2500);
        assert!(det.model.is_some());
    }
}
