//! RUAD (Molan et al., FGCS '23): unsupervised per-node anomaly
//! detection with LSTM models capturing temporal dependencies. Training
//! one deep model per node is its defining cost — the paper's Table 4
//! shows it as the slowest offline method.

use crate::common::{spread_window_scores, window_starts, Detector};
use ns_linalg::matrix::Matrix;
use ns_nn::lstm::LstmAutoencoder;
use ns_nn::{Adam, Graph, ParamStore};
use rayon::prelude::*;

/// Configuration.
#[derive(Clone, Debug)]
pub struct RuadConfig {
    pub window: usize,
    pub hidden: usize,
    pub epochs: usize,
    pub lr: f64,
    /// Cap on training windows per node.
    pub max_windows_per_node: usize,
    pub seed: u64,
}

impl Default for RuadConfig {
    fn default() -> Self {
        Self {
            window: 16,
            hidden: 24,
            epochs: 6,
            lr: 4e-3,
            max_windows_per_node: 120,
            seed: 5,
        }
    }
}

/// Per-node LSTM autoencoders.
pub struct Ruad {
    cfg: RuadConfig,
    models: Vec<(ParamStore, LstmAutoencoder)>,
}

impl Ruad {
    pub fn new(cfg: RuadConfig) -> Self {
        Self {
            cfg,
            models: Vec::new(),
        }
    }
}

impl Default for Ruad {
    fn default() -> Self {
        Self::new(RuadConfig::default())
    }
}

impl Detector for Ruad {
    fn name(&self) -> &'static str {
        "RUAD"
    }

    fn fit(&mut self, nodes: &[Matrix], split: usize) {
        let cfg = self.cfg.clone();
        // One model per node — the scaling burden the paper criticises.
        self.models = nodes
            .par_iter()
            .enumerate()
            .map(|(idx, node)| {
                let upto = split.min(node.rows());
                let train = node.slice_rows(0, upto);
                let dim = train.cols();
                let mut params = ParamStore::new(cfg.seed ^ (idx as u64) << 8);
                let ae = LstmAutoencoder::new(&mut params, "ruad", dim, cfg.hidden);
                let mut starts = window_starts(train.rows(), cfg.window);
                if starts.len() > cfg.max_windows_per_node {
                    let stride = starts.len() / cfg.max_windows_per_node + 1;
                    starts = starts.into_iter().step_by(stride).collect();
                }
                let mut opt = Adam::new(cfg.lr);
                for _epoch in 0..cfg.epochs {
                    for &s in &starts {
                        let win = train.slice_rows(s, (s + cfg.window).min(train.rows()));
                        if win.rows() < 2 {
                            continue;
                        }
                        let grads = {
                            let mut g = Graph::new(&params);
                            let l = ae.loss(&mut g, &win);
                            g.backward(l)
                        };
                        opt.step(&mut params, &grads);
                    }
                }
                (params, ae)
            })
            .collect();
    }

    fn score_node(&self, node_idx: usize, data: &Matrix, split: usize) -> Vec<f64> {
        let (params, ae) = self.models.get(node_idx).expect("fit before score");
        let test = data.slice_rows(split.min(data.rows()), data.rows());
        let len = test.rows();
        if len == 0 {
            return Vec::new();
        }
        let starts = window_starts(len, self.cfg.window);
        let errs: Vec<f64> = starts
            .par_iter()
            .map(|&s| {
                let win = test.slice_rows(s, (s + self.cfg.window).min(len));
                let mut g = Graph::new(params);
                let recon = ae.reconstruct(&mut g, &win);
                let rv = g.value(recon);
                let mut err = 0.0;
                for r in 0..win.rows() {
                    for (a, b) in win.row(r).iter().zip(rv.row(r)) {
                        err += (a - b) * (a - b);
                    }
                }
                err / win.len() as f64
            })
            .collect();
        spread_window_scores(len, self.cfg.window, &starts, &errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_node_models_are_trained() {
        let nodes: Vec<Matrix> = (0..2)
            .map(|n| Matrix::from_fn(120, 3, |t, m| ((t + n * 7) as f64 * 0.3 + m as f64).sin()))
            .collect();
        let mut det = Ruad::new(RuadConfig {
            epochs: 2,
            ..Default::default()
        });
        det.fit(&nodes, 80);
        assert_eq!(det.models.len(), 2);
        let scores = det.score_node(1, &nodes[1], 80);
        assert_eq!(scores.len(), 40);
        assert!(scores.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn level_shift_scores_higher_than_baseline() {
        let mut node = Matrix::from_fn(200, 2, |t, m| ((t as f64) * 0.4 + m as f64).sin() * 0.5);
        for t in 160..190 {
            for m in 0..2 {
                node[(t, m)] += 3.0;
            }
        }
        let nodes = vec![node];
        let mut det = Ruad::new(RuadConfig {
            epochs: 4,
            ..Default::default()
        });
        det.fit(&nodes, 120);
        let scores = det.score_node(0, &nodes[0], 120);
        let anom: f64 = scores[40..70].iter().sum::<f64>() / 30.0;
        let norm: f64 = scores[..40].iter().sum::<f64>() / 40.0;
        assert!(anom > norm, "anom {anom} vs norm {norm}");
    }
}
