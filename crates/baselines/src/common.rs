//! Shared plumbing for baseline detectors: the `Detector` trait and
//! window utilities. Baselines consume *preprocessed* node matrices (the
//! same cleaning/reduction/standardization NodeSentry uses), so the
//! comparison isolates the detection strategy itself.

use ns_linalg::matrix::Matrix;

/// A baseline anomaly detector over per-node preprocessed MTS.
pub trait Detector {
    /// Display name (Table 4 row label).
    fn name(&self) -> &'static str;

    /// Train on all nodes' `[0, split)` spans.
    fn fit(&mut self, nodes: &[Matrix], split: usize);

    /// Per-timestep anomaly scores for one node's `[split, rows)` span.
    fn score_node(&self, node_idx: usize, data: &Matrix, split: usize) -> Vec<f64>;
}

/// Tile `[start, end)` into fixed windows, final window aligned to the
/// end. Returns window start offsets (relative to `start`).
pub fn window_starts(len: usize, window: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    let w = window.min(len).max(1);
    let mut starts: Vec<usize> = (0..=len.saturating_sub(w)).step_by(w).collect();
    if let Some(&last) = starts.last() {
        if last + w < len {
            starts.push(len - w);
        }
    }
    starts
}

/// Summary features of one window: per-metric `[mean, std, min, max]`
/// (the per-window representation Prodigy-style detectors consume).
pub fn window_summary(win: &Matrix) -> Vec<f64> {
    let m = win.cols();
    let mut out = Vec::with_capacity(4 * m);
    for c in 0..m {
        let col = win.col(c);
        out.push(ns_linalg::stats::mean(&col));
        out.push(ns_linalg::stats::std_dev(&col));
        out.push(ns_linalg::stats::min(&col));
        out.push(ns_linalg::stats::max(&col));
    }
    out
}

/// Spread per-window scores back to per-timestep scores over `len`
/// points (overlaps keep the max).
pub fn spread_window_scores(
    len: usize,
    window: usize,
    starts: &[usize],
    scores: &[f64],
) -> Vec<f64> {
    let w = window.min(len).max(1);
    let mut out = vec![0.0f64; len];
    for (&s, &v) in starts.iter().zip(scores) {
        for slot in out[s..(s + w).min(len)].iter_mut() {
            *slot = slot.max(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_starts_tile_and_align() {
        assert_eq!(window_starts(10, 4), vec![0, 4, 6]);
        assert_eq!(window_starts(8, 4), vec![0, 4]);
        assert_eq!(window_starts(3, 4), vec![0]);
        assert!(window_starts(0, 4).is_empty());
    }

    #[test]
    fn summary_has_four_per_metric() {
        let win = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0]]);
        let s = window_summary(&win);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0], 2.0); // mean of col 0
        assert_eq!(s[2], 1.0); // min
        assert_eq!(s[3], 3.0); // max
        assert_eq!(s[5], 0.0); // std of constant col 1
    }

    #[test]
    fn spreading_covers_all_points() {
        let starts = window_starts(10, 4);
        let spread = spread_window_scores(10, 4, &starts, &[1.0, 2.0, 3.0]);
        assert_eq!(spread.len(), 10);
        assert!(spread.iter().all(|&v| v > 0.0));
        // Overlap region takes the max.
        assert_eq!(spread[7], 3.0);
    }
}
