//! Seeded fault injection for tick streams — the delivery-layer analogue
//! of [`crate::anomaly`].
//!
//! [`crate::anomaly`] corrupts the *signals* a node emits; this module
//! corrupts the *transport* that carries them to the detector: dropped
//! ticks, duplicated and out-of-order delivery, NaN bursts, stuck-at-
//! last-value sensors, counter resets, clock skew, and whole-node
//! blackouts with rejoin. Every perturbation is planned up front from a
//! seed ([`FaultPlan`]), applied deterministically ([`FaultInjector`]),
//! and recorded as ground truth, so the differential fault-tolerance
//! suite (`tests/fault_tolerance.rs`) can compare the hardened streaming
//! engine against the clean batch oracle *outside* the faulted windows
//! and check degraded-mode annotations *inside* them.
//!
//! The injector is purely a stream transformer: `Vec<Tick>` in,
//! `Vec<Tick>` out, plus the set of `(node, step)` labels that were never
//! delivered at all. It knows nothing about the detector.

use nodesentry_core::Tick;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rustc_hash::FxHashSet;

/// The fault taxonomy. Each class models a failure mode observed in
/// production HPC telemetry collection (see DESIGN.md §"Fault model").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Ticks inside the window are omitted with probability `magnitude`.
    Drop,
    /// Ticks inside the window are re-delivered a few positions later
    /// with probability `magnitude` (at-least-once transport).
    Duplicate,
    /// Delivery order inside the window is locally shuffled; no tick is
    /// displaced by more than `magnitude` positions.
    Reorder,
    /// Every value of every tick in the window is NaN (collector up,
    /// payload lost).
    NanBurst,
    /// The columns in `cols` repeat their last pre-window value for the
    /// whole window (frozen sensor / stale cache).
    StuckSensor,
    /// The cumulative columns in `cols` lose their accumulated history for
    /// the window (collector restart): values in `[start, end)` are
    /// rebased to zero, so the first in-window rate goes negative and the
    /// recovery rate at `end` spikes back up.
    CounterReset,
    /// Ticks inside the window are stamped `magnitude` steps late
    /// (`step += skew`), so some labels never arrive and others arrive
    /// twice.
    ClockSkew,
    /// The node goes dark for the whole window, then rejoins.
    Blackout,
}

/// All fault classes, for sweeps.
pub const ALL_FAULTS: [FaultKind; 8] = [
    FaultKind::Drop,
    FaultKind::Duplicate,
    FaultKind::Reorder,
    FaultKind::NanBurst,
    FaultKind::StuckSensor,
    FaultKind::CounterReset,
    FaultKind::ClockSkew,
    FaultKind::Blackout,
];

/// One planned fault: a class applied to one node over `[start, end)`.
#[derive(Clone, Debug)]
pub struct FaultEvent {
    pub node: usize,
    pub kind: FaultKind,
    /// First affected step.
    pub start: usize,
    /// One past the last affected step.
    pub end: usize,
    /// Class-specific knob: drop/duplicate probability, reorder
    /// displacement bound, or clock-skew distance in steps.
    pub magnitude: f64,
    /// Raw columns targeted by `StuckSensor` / `CounterReset` (ignored by
    /// the other classes).
    pub cols: Vec<usize>,
}

impl FaultEvent {
    /// The step labels whose *content or presence* this event may
    /// corrupt, before any detector-side widening. `Duplicate` and
    /// `Reorder` return an empty range: a bounded reorder buffer heals
    /// them completely, so no label is dirty.
    pub fn dirty_range(&self) -> (usize, usize) {
        match self.kind {
            FaultKind::Duplicate | FaultKind::Reorder => (self.start, self.start),
            // The skewed relabeling corrupts delivery up to `skew` steps
            // past the window end (those labels arrive twice).
            FaultKind::ClockSkew => (self.start, self.end + self.magnitude as usize),
            // The rebased window corrupts every rate inside it, plus the
            // re-jump rate at `end` when the true level returns.
            FaultKind::CounterReset => (self.start, self.end + 1),
            _ => (self.start, self.end),
        }
    }
}

/// A deterministic schedule of fault events plus the seed that resolves
/// their per-tick coin flips.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
    pub seed: u64,
}

/// Knobs for [`FaultPlan::random`].
#[derive(Clone, Debug)]
pub struct FaultPlanSpec {
    pub seed: u64,
    /// Steps where fault windows may start: `[lo, hi)`.
    pub window: (usize, usize),
    /// Fault classes to draw from.
    pub kinds: Vec<FaultKind>,
    /// Expected fraction of `window` steps covered by fault events, per
    /// node.
    pub rate: f64,
    /// Event length range `[min, max]` in steps.
    pub event_len: (usize, usize),
    /// Raw stream width (for choosing `StuckSensor` columns).
    pub n_cols: usize,
    /// Raw columns that hold cumulative counters (`CounterReset`
    /// targets); when empty, `CounterReset` is skipped.
    pub counter_cols: Vec<usize>,
}

impl FaultPlan {
    /// A plan holding exactly one event (per-class differential tests).
    pub fn single(event: FaultEvent, seed: u64) -> Self {
        FaultPlan {
            events: vec![event],
            seed,
        }
    }

    /// Draw a random plan: every node gets enough events of the given
    /// classes to cover roughly `rate` of the window.
    pub fn random(spec: &FaultPlanSpec, n_nodes: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0xFA_07);
        let (lo, hi) = spec.window;
        let span = hi.saturating_sub(lo);
        let mut events = Vec::new();
        if span == 0 || spec.kinds.is_empty() {
            return FaultPlan {
                events,
                seed: spec.seed,
            };
        }
        let (min_len, max_len) = spec.event_len;
        let mean_len = ((min_len + max_len) / 2).max(1);
        let per_node = ((spec.rate * span as f64 / mean_len as f64).round() as usize).max(1);
        for node in 0..n_nodes {
            for _ in 0..per_node {
                let kind = spec.kinds[rng.gen_range(0..spec.kinds.len())];
                let len = rng.gen_range(min_len..=max_len).min(span);
                let start = lo + rng.gen_range(0..(span - len + 1).max(1));
                let magnitude = match kind {
                    FaultKind::Drop | FaultKind::Duplicate => rng.gen_range(0.3f64..1.0),
                    FaultKind::Reorder => rng.gen_range(2u32..6) as f64,
                    FaultKind::ClockSkew => rng.gen_range(2u32..8) as f64,
                    _ => 1.0,
                };
                let cols = match kind {
                    FaultKind::StuckSensor => {
                        // Freeze a contiguous half of the columns — broad
                        // enough for run-length detection to confirm.
                        let take = (spec.n_cols / 2).max(1).min(spec.n_cols);
                        let first = rng.gen_range(0..(spec.n_cols - take + 1).max(1));
                        (first..first + take).collect()
                    }
                    FaultKind::CounterReset => spec.counter_cols.clone(),
                    _ => Vec::new(),
                };
                if kind == FaultKind::CounterReset && cols.is_empty() {
                    continue;
                }
                events.push(FaultEvent {
                    node,
                    kind,
                    start,
                    end: start + len,
                    magnitude,
                    cols,
                });
            }
        }
        events.sort_by_key(|e| (e.node, e.start));
        FaultPlan {
            events,
            seed: spec.seed,
        }
    }

    /// Union of [`FaultEvent::dirty_range`]s for one node, merged and
    /// sorted.
    pub fn dirty_windows(&self, node: usize) -> Vec<(usize, usize)> {
        let mut ws: Vec<(usize, usize)> = self
            .events
            .iter()
            .filter(|e| e.node == node)
            .map(|e| e.dirty_range())
            .filter(|&(s, e)| e > s)
            .collect();
        ws.sort_unstable();
        let mut merged: Vec<(usize, usize)> = Vec::new();
        for (s, e) in ws {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        merged
    }
}

/// Result of applying a plan to a clean stream.
pub struct FaultOutcome {
    /// The perturbed stream, in delivery order.
    pub stream: Vec<Tick>,
    /// `(node, step)` labels that were never delivered at all (dropped,
    /// blacked out, or erased by clock skew). The hardened engine must
    /// not emit a verdict for any of them.
    pub dropped: FxHashSet<(usize, usize)>,
}

/// Applies a [`FaultPlan`] to a clean tick stream.
///
/// The clean stream must carry, per node, exactly one tick per step from
/// 0 to that node's horizon — the contract the generators in this crate
/// already satisfy. Value faults mutate payloads in place; delivery
/// faults then drop, duplicate, displace, or relabel ticks. The output
/// preserves global step-major interleaving except where a fault says
/// otherwise.
pub struct FaultInjector {
    plan: FaultPlan,
}

/// Delivery-order sub-slot: duplicates land after every native tick of
/// the same position.
const SLOT: u64 = 4;

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn apply(&self, clean: &[Tick]) -> FaultOutcome {
        let n_nodes = clean.iter().map(|t| t.node + 1).max().unwrap_or(0);
        // Per-node timelines indexed by step.
        let mut timelines: Vec<Vec<Tick>> = vec![Vec::new(); n_nodes];
        for t in clean {
            timelines[t.node].push(t.clone());
        }
        for (node, tl) in timelines.iter_mut().enumerate() {
            tl.sort_by_key(|t| t.step);
            for (i, t) in tl.iter().enumerate() {
                assert_eq!(
                    t.step, i,
                    "node {node}: clean stream must be a gapless 0-based step grid"
                );
            }
        }

        let mut rng = ChaCha8Rng::seed_from_u64(self.plan.seed ^ 0x001C_C7E4);
        // Deliveries as (sort key, tiebreak, tick). Key = position * SLOT
        // so duplicates and jitter have sub-step room.
        let mut deliveries: Vec<(u64, u64, Tick)> = Vec::new();
        let mut seq = 0u64;

        for (node, tl) in timelines.iter_mut().enumerate() {
            let horizon = tl.len();
            // --- value faults (mutate payloads in place) -------------
            for ev in self.plan.events.iter().filter(|e| e.node == node) {
                let (start, end) = (ev.start.min(horizon), ev.end.min(horizon));
                match ev.kind {
                    FaultKind::NanBurst => {
                        for t in &mut tl[start..end] {
                            for v in &mut t.values {
                                *v = f64::NAN;
                            }
                        }
                    }
                    FaultKind::StuckSensor => {
                        if start == 0 {
                            continue;
                        }
                        let frozen: Vec<f64> =
                            ev.cols.iter().map(|&c| tl[start - 1].values[c]).collect();
                        for t in &mut tl[start..end] {
                            for (&c, &fv) in ev.cols.iter().zip(&frozen) {
                                t.values[c] = fv;
                            }
                        }
                    }
                    FaultKind::CounterReset => {
                        if start >= end {
                            continue;
                        }
                        let base: Vec<f64> = ev.cols.iter().map(|&c| tl[start].values[c]).collect();
                        // Transient rebase: the collector restart loses the
                        // accumulated level for the window, then the primary
                        // source recovers and reports the true cumulative
                        // value again — a downward step into the window and
                        // an upward re-jump out of it. (Keeping the fault
                        // transient also keeps the post-window stream
                        // bit-identical to the clean one, which the
                        // differential harness depends on: rebasing is not
                        // shift-invariant under fp interpolation/averaging.)
                        for t in &mut tl[start..end] {
                            for (&c, &b) in ev.cols.iter().zip(&base) {
                                if !t.values[c].is_nan() && b.is_finite() {
                                    t.values[c] -= b;
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            // --- delivery faults -------------------------------------
            // Per-step flags: dropped / duplicated / jitter / relabel.
            let mut keep = vec![true; horizon];
            let mut dup_lag = vec![0usize; horizon];
            let mut jitter = vec![0u64; horizon];
            let mut relabel: Vec<Option<usize>> = vec![None; horizon];
            for ev in self.plan.events.iter().filter(|e| e.node == node) {
                let (start, end) = (ev.start.min(horizon), ev.end.min(horizon));
                match ev.kind {
                    FaultKind::Drop => {
                        for flag in &mut keep[start..end] {
                            if rng.gen_range(0.0f64..1.0) < ev.magnitude {
                                *flag = false;
                            }
                        }
                    }
                    FaultKind::Blackout => {
                        for flag in &mut keep[start..end] {
                            *flag = false;
                        }
                    }
                    FaultKind::Duplicate => {
                        for lag in &mut dup_lag[start..end] {
                            if rng.gen_range(0.0f64..1.0) < ev.magnitude {
                                *lag = rng.gen_range(1usize..4);
                            }
                        }
                    }
                    FaultKind::Reorder => {
                        let depth = (ev.magnitude as u64).max(1);
                        // Bounded displacement: with per-tick forward
                        // jitter in [0, depth], a stable sort moves no
                        // tick more than `depth` positions.
                        let mut idx: Vec<usize> = (start..end).collect();
                        idx.shuffle(&mut rng);
                        for s in idx {
                            jitter[s] = rng.gen_range(0..=depth);
                        }
                    }
                    FaultKind::ClockSkew => {
                        let skew = (ev.magnitude as usize).max(1);
                        for (s, slot) in relabel.iter_mut().enumerate().take(end).skip(start) {
                            *slot = Some(s + skew);
                        }
                    }
                    _ => {}
                }
            }
            for (s, tick) in tl.iter().enumerate() {
                if !keep[s] {
                    continue;
                }
                let mut t = tick.clone();
                if let Some(label) = relabel[s] {
                    // A tick stamped past the end of the capture window is
                    // simply lost — the injector never delivers a label the
                    // clean grid doesn't have, so downstream consumers can
                    // size per-step buffers by the horizon.
                    if label >= horizon {
                        continue;
                    }
                    t.step = label;
                }
                let key = (s as u64 + jitter[s]) * SLOT;
                if dup_lag[s] > 0 {
                    let dup_key = (s + dup_lag[s]) as u64 * SLOT + 1;
                    deliveries.push((dup_key, seq, t.clone()));
                    seq += 1;
                }
                deliveries.push((key, seq, t));
                seq += 1;
            }
        }

        deliveries.sort_by_key(|&(key, seq, _)| (key, seq));
        let delivered: FxHashSet<(usize, usize)> = deliveries
            .iter()
            .map(|(_, _, t)| (t.node, t.step))
            .collect();
        let dropped: FxHashSet<(usize, usize)> = timelines
            .iter()
            .enumerate()
            .flat_map(|(node, tl)| (0..tl.len()).map(move |s| (node, s)))
            .filter(|label| !delivered.contains(label))
            .collect();
        FaultOutcome {
            stream: deliveries.into_iter().map(|(_, _, t)| t).collect(),
            dropped,
        }
    }
}

// ---------------------------------------------------------------------
// Socket-level faults
// ---------------------------------------------------------------------

/// A seeded schedule of *transport* faults for the wire client
/// ([`crate::client::IngestClient`]): where [`FaultPlan`] corrupts tick
/// content and delivery order, this layer corrupts the TCP session
/// carrying the frames — partial writes, stalls, torn frames,
/// disconnect/reconnect cycles, duplicate connections.
///
/// All of these are *verdict-neutral* by construction: partial writes and
/// stalls only stress the server's frame reassembly; torn frames and
/// duplicate connections re-send data the engine already consumed (it
/// rejects the copy as a duplicate); disconnects sync with a ping before
/// closing so nothing in flight is lost. `tests/wire_equivalence.rs`
/// holds the engine to bit-identical verdicts under the full plan.
#[derive(Clone, Debug)]
pub struct SocketFaultPlan {
    pub seed: u64,
    /// Probability a frame's bytes are written in several small chunks.
    pub partial_write_rate: f64,
    /// Probability the client stalls before writing a frame.
    pub stall_rate: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Sync and cleanly reconnect every N frames (0 = never).
    pub disconnect_every: usize,
    /// Probability a frame is torn: after a sync, write a strict prefix,
    /// drop the connection, reconnect, and re-send the whole frame.
    pub torn_frame_rate: f64,
    /// Probability an already-ingested tick frame is re-sent on a
    /// short-lived second connection (at-least-once redelivery).
    pub duplicate_conn_rate: f64,
}

impl SocketFaultPlan {
    /// No socket faults at all.
    pub fn none() -> Self {
        SocketFaultPlan {
            seed: 0,
            partial_write_rate: 0.0,
            stall_rate: 0.0,
            stall_ms: 0,
            disconnect_every: 0,
            torn_frame_rate: 0.0,
            duplicate_conn_rate: 0.0,
        }
    }

    /// Every fault class at once, rates tuned so a few-hundred-frame
    /// session hits each one several times without dominating wall time.
    pub fn chaos(seed: u64) -> Self {
        SocketFaultPlan {
            seed,
            partial_write_rate: 0.05,
            stall_rate: 0.01,
            stall_ms: 2,
            disconnect_every: 97,
            torn_frame_rate: 0.01,
            duplicate_conn_rate: 0.01,
        }
    }

    pub fn is_none(&self) -> bool {
        self.partial_write_rate == 0.0
            && self.stall_rate == 0.0
            && self.disconnect_every == 0
            && self.torn_frame_rate == 0.0
            && self.duplicate_conn_rate == 0.0
    }
}

/// What the client should do to the frame it is about to send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocketFaultAction {
    /// Write the frame normally.
    Clean,
    /// Write the frame in this many separate chunks.
    PartialWrite { chunks: usize },
    /// Sleep this long, then write normally.
    Stall { ms: u64 },
    /// Sync, close cleanly, reconnect, then write.
    Disconnect,
    /// Sync, write a strict prefix, drop the connection, reconnect, and
    /// re-send the whole frame.
    TornResend,
    /// Write normally, sync, then re-send the same frame on a fresh
    /// second connection.
    DuplicateConn,
}

/// Counts of each socket fault actually exercised, for reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SocketFaultCounters {
    pub partial_writes: u64,
    pub stalls: u64,
    pub disconnects: u64,
    pub torn_resends: u64,
    pub duplicate_conns: u64,
}

impl SocketFaultCounters {
    pub fn total(&self) -> u64 {
        self.partial_writes
            + self.stalls
            + self.disconnects
            + self.torn_resends
            + self.duplicate_conns
    }
}

/// Draws one [`SocketFaultAction`] per outgoing frame, deterministically
/// from the plan's seed.
pub struct SocketFaultInjector {
    plan: SocketFaultPlan,
    rng: ChaCha8Rng,
    frames: usize,
}

impl SocketFaultInjector {
    pub fn new(plan: SocketFaultPlan) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(plan.seed ^ 0x0050_CCE7);
        SocketFaultInjector {
            plan,
            rng,
            frames: 0,
        }
    }

    /// Decide the fate of the next outgoing frame. At most one fault per
    /// frame; the scheduled disconnect takes priority so its cadence
    /// stays exact.
    pub fn next_action(&mut self) -> SocketFaultAction {
        self.frames += 1;
        let p = &self.plan;
        if p.disconnect_every > 0 && self.frames.is_multiple_of(p.disconnect_every) {
            return SocketFaultAction::Disconnect;
        }
        let roll: f64 = self.rng.gen();
        let mut edge = p.torn_frame_rate;
        if roll < edge {
            return SocketFaultAction::TornResend;
        }
        edge += p.duplicate_conn_rate;
        if roll < edge {
            return SocketFaultAction::DuplicateConn;
        }
        edge += p.partial_write_rate;
        if roll < edge {
            return SocketFaultAction::PartialWrite {
                chunks: self.rng.gen_range(2usize..5),
            };
        }
        edge += p.stall_rate;
        if roll < edge {
            return SocketFaultAction::Stall { ms: p.stall_ms };
        }
        SocketFaultAction::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_stream(n_nodes: usize, horizon: usize) -> Vec<Tick> {
        let mut out = Vec::new();
        for step in 0..horizon {
            for node in 0..n_nodes {
                out.push(Tick {
                    node,
                    step,
                    values: vec![step as f64, (node * 1000 + step) as f64],
                    transition: false,
                });
            }
        }
        out
    }

    fn event(kind: FaultKind, node: usize, start: usize, end: usize, mag: f64) -> FaultEvent {
        FaultEvent {
            node,
            kind,
            start,
            end,
            magnitude: mag,
            cols: vec![0],
        }
    }

    #[test]
    fn blackout_drops_exactly_the_window() {
        let clean = clean_stream(2, 50);
        let plan = FaultPlan::single(event(FaultKind::Blackout, 1, 10, 20, 1.0), 1);
        let out = FaultInjector::new(plan).apply(&clean);
        assert_eq!(out.dropped.len(), 10);
        for s in 10..20 {
            assert!(out.dropped.contains(&(1, s)));
        }
        // Node 0 untouched and in order.
        let n0: Vec<usize> = out
            .stream
            .iter()
            .filter(|t| t.node == 0)
            .map(|t| t.step)
            .collect();
        assert_eq!(n0, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn reorder_is_bounded_and_lossless() {
        let clean = clean_stream(1, 80);
        let plan = FaultPlan::single(event(FaultKind::Reorder, 0, 20, 60, 4.0), 9);
        let out = FaultInjector::new(plan).apply(&clean);
        assert!(out.dropped.is_empty());
        let steps: Vec<usize> = out.stream.iter().map(|t| t.step).collect();
        assert_eq!(steps.len(), 80);
        let mut displaced = 0usize;
        for (pos, &s) in steps.iter().enumerate() {
            assert!(pos.abs_diff(s) <= 4, "tick {s} displaced to {pos}");
            displaced += (pos != s) as usize;
        }
        assert!(displaced > 0, "seeded reorder should move something");
    }

    #[test]
    fn duplicates_arrive_after_their_original() {
        let clean = clean_stream(1, 40);
        let plan = FaultPlan::single(event(FaultKind::Duplicate, 0, 5, 30, 1.0), 3);
        let out = FaultInjector::new(plan).apply(&clean);
        assert!(out.dropped.is_empty());
        assert!(out.stream.len() > 40);
        let mut first_seen = std::collections::HashMap::new();
        for (pos, t) in out.stream.iter().enumerate() {
            let prev = first_seen.insert(t.step, pos);
            if let Some(p) = prev {
                assert!(pos > p, "duplicate of {} delivered before original", t.step);
            }
        }
    }

    #[test]
    fn clock_skew_erases_and_doubles_labels() {
        let clean = clean_stream(1, 60);
        let plan = FaultPlan::single(event(FaultKind::ClockSkew, 0, 20, 30, 5.0), 4);
        let out = FaultInjector::new(plan).apply(&clean);
        // Labels [20, 25) vanish; [30, 35) arrive twice.
        for s in 20..25 {
            assert!(out.dropped.contains(&(0, s)), "label {s} should be erased");
        }
        for s in 30..35 {
            let n = out.stream.iter().filter(|t| t.step == s).count();
            assert_eq!(n, 2, "label {s} should arrive twice");
        }
        assert_eq!((20, 35), plan_dirty(&FaultKind::ClockSkew));
    }

    fn plan_dirty(kind: &FaultKind) -> (usize, usize) {
        event(*kind, 0, 20, 30, 5.0).dirty_range()
    }

    #[test]
    fn counter_reset_rebases_window_then_recovers() {
        let clean = clean_stream(1, 30);
        let plan = FaultPlan::single(event(FaultKind::CounterReset, 0, 10, 20, 1.0), 2);
        let out = FaultInjector::new(plan).apply(&clean);
        for t in &out.stream {
            let expect = if (10..20).contains(&t.step) {
                t.step as f64 - 10.0
            } else {
                t.step as f64
            };
            assert_eq!(t.values[0], expect, "step {}", t.step);
            assert_eq!(t.values[1], (t.step) as f64, "col 1 untouched");
        }
        // The rates go wrong in [10, 21): every rebased sample plus the
        // re-jump when the true level returns.
        assert_eq!(
            (10, 21),
            event(FaultKind::CounterReset, 0, 10, 20, 1.0).dirty_range()
        );
    }

    #[test]
    fn stuck_sensor_freezes_only_target_columns() {
        let clean = clean_stream(1, 30);
        let plan = FaultPlan::single(event(FaultKind::StuckSensor, 0, 12, 22, 1.0), 2);
        let out = FaultInjector::new(plan).apply(&clean);
        for t in &out.stream {
            if (12..22).contains(&t.step) {
                assert_eq!(t.values[0], 11.0);
            } else {
                assert_eq!(t.values[0], t.step as f64);
            }
        }
    }

    #[test]
    fn random_plan_is_deterministic_and_in_window() {
        let spec = FaultPlanSpec {
            seed: 77,
            window: (100, 400),
            kinds: ALL_FAULTS.to_vec(),
            rate: 0.2,
            event_len: (10, 30),
            n_cols: 8,
            counter_cols: vec![2, 5],
        };
        let a = FaultPlan::random(&spec, 3);
        let b = FaultPlan::random(&spec, 3);
        assert_eq!(a.events.len(), b.events.len());
        assert!(!a.events.is_empty());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.kind, y.kind);
            assert_eq!((x.start, x.end), (y.start, y.end));
            assert!(x.start >= 100 && x.end <= 430);
        }
    }

    #[test]
    fn dirty_windows_merge_overlaps() {
        let plan = FaultPlan {
            events: vec![
                event(FaultKind::NanBurst, 0, 10, 20, 1.0),
                event(FaultKind::Drop, 0, 15, 25, 1.0),
                event(FaultKind::Reorder, 0, 30, 40, 3.0),
                event(FaultKind::Blackout, 0, 50, 60, 1.0),
            ],
            seed: 0,
        };
        assert_eq!(plan.dirty_windows(0), vec![(10, 25), (50, 60)]);
        assert!(plan.dirty_windows(1).is_empty());
    }

    #[test]
    fn socket_fault_schedule_is_deterministic_and_hits_every_class() {
        let draw = |seed| {
            let mut inj = SocketFaultInjector::new(SocketFaultPlan::chaos(seed));
            (0..2000).map(|_| inj.next_action()).collect::<Vec<_>>()
        };
        let a = draw(11);
        assert_eq!(a, draw(11), "same seed, same schedule");
        assert_ne!(a, draw(12), "different seed diverges");
        // The chaos plan exercises every class within a few thousand frames.
        assert!(a.contains(&SocketFaultAction::Disconnect));
        assert!(a.contains(&SocketFaultAction::TornResend));
        assert!(a.contains(&SocketFaultAction::DuplicateConn));
        assert!(a
            .iter()
            .any(|x| matches!(x, SocketFaultAction::PartialWrite { .. })));
        assert!(a
            .iter()
            .any(|x| matches!(x, SocketFaultAction::Stall { .. })));
        // Scheduled disconnect cadence is exact.
        assert_eq!(a[96], SocketFaultAction::Disconnect);
        // No-fault plan is all-clean.
        let mut none = SocketFaultInjector::new(SocketFaultPlan::none());
        assert!((0..100).all(|_| none.next_action() == SocketFaultAction::Clean));
    }
}
