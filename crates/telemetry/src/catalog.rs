//! The raw metric catalog: thousands of Prometheus-node-exporter-style
//! metrics expanded deterministically from the latent node state.
//!
//! Real HPC telemetry is wide because hardware is replicated (cores, NUMA
//! nodes, mounts, NICs) and because the same underlying quantity is
//! exported in many forms (gauge, cumulative counter, smoothed, lagged).
//! The catalog models exactly that: each raw metric binds to one latent
//! [`Signal`] through a *transform family*, and per-unit metrics split
//! their signal across cores/NUMA nodes/mounts/interfaces. With the
//! [`CatalogSpec::full`] hardware shape the catalog has exactly **3,014**
//! metrics with the paper's Table 3 category counts.

use crate::signals::{Signal, SignalFrame};
use ns_linalg::matrix::Matrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Metric category (paper Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    Cpu,
    Memory,
    Filesystem,
    Network,
    Process,
    System,
}

impl Category {
    pub fn name(self) -> &'static str {
        match self {
            Category::Cpu => "CPU",
            Category::Memory => "Memory",
            Category::Filesystem => "Filesystem",
            Category::Network => "Network",
            Category::Process => "Process",
            Category::System => "System",
        }
    }
}

/// How a raw metric derives from its latent signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transform {
    /// Direct gauge: `a·s + b + noise`.
    Gauge,
    /// Cumulative counter: running sum of the (scaled) rate — the
    /// `*_total` metrics.
    Counter,
    /// Gauge observed with a small collection lag.
    Lagged(usize),
    /// Gauge saturating at a cap (queue depths, clamped utilisations).
    Saturated,
    /// Gauge with heavy observation noise.
    Noisy,
}

/// One raw metric definition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RawMetric {
    pub name: String,
    pub category: Category,
    /// Latent signal index this metric projects.
    pub signal: usize,
    /// Semantic group: metrics with the same group id measure the same
    /// quantity (possibly per-unit) and are merged by the reduction step.
    pub group: usize,
    pub transform: Transform,
    pub scale: f64,
    pub offset: f64,
    pub noise: f64,
    /// `Some((unit, total_units))` for per-core / per-NUMA / per-mount /
    /// per-interface metrics: the node-level signal splits across units.
    pub share: Option<(usize, usize)>,
}

/// Hardware shape driving catalog width.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CatalogSpec {
    pub cores: usize,
    pub numa_nodes: usize,
    pub mounts: usize,
    pub interfaces: usize,
}

impl CatalogSpec {
    /// D1's hardware: 64 cores, 8 NUMA nodes, 4 mounts, 3 NICs →
    /// exactly 3,014 metrics (Table 3 counts).
    pub fn full() -> Self {
        Self {
            cores: 64,
            numa_nodes: 8,
            mounts: 4,
            interfaces: 3,
        }
    }

    /// Scaled-down default for laptop-scale experiments.
    pub fn scaled() -> Self {
        Self {
            cores: 8,
            numa_nodes: 2,
            mounts: 2,
            interfaces: 2,
        }
    }

    /// Small shape for the D2-like profile.
    pub fn small() -> Self {
        Self {
            cores: 4,
            numa_nodes: 1,
            mounts: 1,
            interfaces: 1,
        }
    }
}

/// Number of per-core CPU metric kinds.
const CPU_PER_CORE_KINDS: usize = 21;
const CPU_GLOBAL_KINDS: usize = 34;
const MEM_GLOBAL_KINDS: usize = 65;
const MEM_PER_NUMA_KINDS: usize = 110;
const FS_GLOBAL_KINDS: usize = 14;
const FS_PER_MOUNT_KINDS: usize = 60;
const NET_GLOBAL_KINDS: usize = 21;
const NET_PER_IFACE_KINDS: usize = 120;
const PROC_KINDS: usize = 12;
const SYS_KINDS: usize = 44;

/// A deterministic 64-bit mix (splitmix64) for per-metric parameters and
/// observation noise — far cheaper than a full RNG per sample.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform in `[-1, 1]` from a key.
#[inline]
fn noise_from(key: u64) -> f64 {
    (mix(key) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// The full metric catalog.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MetricCatalog {
    pub spec: CatalogSpec,
    metrics: Vec<RawMetric>,
    n_groups: usize,
}

/// Realistic base names cycled through for generated kinds.
fn kind_name(category: Category, k: usize) -> String {
    let cpu = [
        "cpu_seconds_user",
        "cpu_seconds_system",
        "cpu_seconds_iowait",
        "cpu_seconds_idle",
        "cpu_seconds_irq",
        "cpu_seconds_softirq",
        "cpu_seconds_steal",
        "perf_cpu_cycles",
        "perf_instructions",
        "perf_cache_references",
        "perf_cache_misses",
        "perf_branch_misses",
        "perf_cpu_migrations_total",
        "cpu_frequency_hertz",
        "cpu_scaling_governor_perf",
        "cpu_throttles_total",
        "cpu_core_throttle_seconds",
        "schedstat_running_seconds",
        "schedstat_waiting_seconds",
        "cpu_guest_seconds",
        "cpu_nice_seconds",
    ];
    let mem = [
        "memory_active_bytes",
        "memory_inactive_bytes",
        "memory_dirty_bytes",
        "memory_writeback_bytes",
        "memory_kernel_stack_bytes",
        "memory_slab_bytes",
        "memory_page_tables_bytes",
        "numa_foreign_total",
        "numa_hit_total",
        "numa_miss_total",
        "vmstat_pgfault",
        "vmstat_pgmajfault",
        "vmstat_pswpin",
        "vmstat_pswpout",
    ];
    let fs = [
        "filesystem_files_free",
        "filesystem_free_bytes",
        "filesystem_size_bytes",
        "filefd_allocated",
        "disk_reads_completed_total",
        "disk_writes_completed_total",
        "disk_read_time_seconds",
        "disk_write_time_seconds",
        "disk_io_now",
    ];
    let net = [
        "network_receive_bytes_total",
        "network_transmit_bytes_total",
        "network_receive_packets_total",
        "network_transmit_packets_total",
        "network_receive_errs_total",
        "network_transmit_errs_total",
        "network_receive_drop_total",
        "sockstat_sockets_used",
        "netstat_tcp_retrans_segs",
        "netstat_tcp_in_segs",
    ];
    let proc = [
        "procs_running",
        "procs_blocked",
        "processes_state_running",
        "processes_state_sleeping",
        "processes_state_zombie",
        "processes_threads",
        "forks_total",
        "processes_max_processes",
        "processes_pids",
        "procs_running_max",
        "context_switches_total",
        "interrupts_total",
    ];
    let sys = [
        "system_uptime",
        "timex_status",
        "ksmd_run",
        "boot_time_seconds",
        "entropy_available_bits",
        "time_seconds",
        "load1",
        "load5",
        "load15",
        "thermal_zone_temp",
        "power_supply_watts",
        "hwmon_temp_celsius",
        "edac_correctable_errors_total",
        "edac_uncorrectable_errors_total",
    ];
    let pool: &[&str] = match category {
        Category::Cpu => &cpu,
        Category::Memory => &mem,
        Category::Filesystem => &fs,
        Category::Network => &net,
        Category::Process => &proc,
        Category::System => &sys,
    };
    if k < pool.len() {
        pool[k].to_string()
    } else {
        format!("{}_stat_{:03}", pool[k % pool.len()], k)
    }
}

/// Which latent signal a kind of a category binds to.
fn signal_for(category: Category, k: usize) -> usize {
    let cands: &[Signal] = match category {
        Category::Cpu => &[
            Signal::CpuUser,
            Signal::CpuSystem,
            Signal::CpuIoWait,
            Signal::CpuIdle,
            Signal::LoadAvg,
            Signal::CtxSwitches,
            Signal::CpuTemp,
            Signal::PowerWatts,
        ],
        Category::Memory => &[
            Signal::MemUsed,
            Signal::MemCache,
            Signal::MemKernel,
            Signal::SwapUsed,
            Signal::PageFaults,
        ],
        Category::Filesystem => &[
            Signal::DiskReadBytes,
            Signal::DiskWriteBytes,
            Signal::DiskUsedFrac,
            Signal::OpenFds,
            Signal::CpuIoWait,
        ],
        Category::Network => &[
            Signal::NetRxBytes,
            Signal::NetTxBytes,
            Signal::NetSockets,
            Signal::NetRetrans,
        ],
        Category::Process => &[
            Signal::ProcsRunning,
            Signal::ProcsBlocked,
            Signal::CtxSwitches,
        ],
        Category::System => &[
            Signal::Uptime,
            Signal::CpuTemp,
            Signal::PowerWatts,
            Signal::LoadAvg,
            Signal::CtxSwitches,
        ],
    };
    cands[k % cands.len()] as usize
}

/// Transform family for a kind, chosen deterministically.
fn transform_for(category: Category, k: usize) -> Transform {
    match mix((category as u64) << 32 | k as u64) % 10 {
        0..=3 => Transform::Gauge,
        4 | 5 => Transform::Counter,
        6 => Transform::Lagged(1 + (k % 3)),
        7 => Transform::Saturated,
        _ => Transform::Noisy,
    }
}

impl MetricCatalog {
    /// Build the catalog for a hardware shape.
    pub fn build(spec: CatalogSpec) -> Self {
        let mut metrics = Vec::new();
        let mut group = 0usize;
        let push_kind = |metrics: &mut Vec<RawMetric>,
                         group: &mut usize,
                         category: Category,
                         k: usize,
                         units: usize,
                         unit_label: &str| {
            let sig = signal_for(category, k);
            let tr = transform_for(category, k);
            let h = mix((category as u64) << 40 | (k as u64) << 8 | units as u64);
            let scale = 0.5 + (h % 1000) as f64 / 500.0; // 0.5 .. 2.5
            let offset = ((h >> 10) % 100) as f64 / 200.0; // 0 .. 0.5
            let noise = match tr {
                Transform::Noisy => 0.08,
                _ => 0.004 + ((h >> 20) % 10) as f64 / 2000.0,
            };
            let base = kind_name(category, k);
            if units <= 1 {
                metrics.push(RawMetric {
                    name: base,
                    category,
                    signal: sig,
                    group: *group,
                    transform: tr,
                    scale,
                    offset,
                    noise,
                    share: None,
                });
            } else {
                for u in 0..units {
                    metrics.push(RawMetric {
                        name: format!("{base}_{unit_label}{u}"),
                        category,
                        signal: sig,
                        group: *group,
                        transform: tr,
                        scale,
                        offset,
                        noise,
                        share: Some((u, units)),
                    });
                }
            }
            *group += 1;
        };

        for k in 0..CPU_PER_CORE_KINDS {
            push_kind(
                &mut metrics,
                &mut group,
                Category::Cpu,
                k,
                spec.cores,
                "cpu",
            );
        }
        for k in 0..CPU_GLOBAL_KINDS {
            push_kind(
                &mut metrics,
                &mut group,
                Category::Cpu,
                CPU_PER_CORE_KINDS + k,
                1,
                "",
            );
        }
        for k in 0..MEM_GLOBAL_KINDS {
            push_kind(&mut metrics, &mut group, Category::Memory, k, 1, "");
        }
        for k in 0..MEM_PER_NUMA_KINDS {
            push_kind(
                &mut metrics,
                &mut group,
                Category::Memory,
                MEM_GLOBAL_KINDS + k,
                spec.numa_nodes,
                "numa",
            );
        }
        for k in 0..FS_GLOBAL_KINDS {
            push_kind(&mut metrics, &mut group, Category::Filesystem, k, 1, "");
        }
        for k in 0..FS_PER_MOUNT_KINDS {
            push_kind(
                &mut metrics,
                &mut group,
                Category::Filesystem,
                FS_GLOBAL_KINDS + k,
                spec.mounts,
                "mnt",
            );
        }
        for k in 0..NET_GLOBAL_KINDS {
            push_kind(&mut metrics, &mut group, Category::Network, k, 1, "");
        }
        for k in 0..NET_PER_IFACE_KINDS {
            push_kind(
                &mut metrics,
                &mut group,
                Category::Network,
                NET_GLOBAL_KINDS + k,
                spec.interfaces,
                "eth",
            );
        }
        for k in 0..PROC_KINDS {
            push_kind(&mut metrics, &mut group, Category::Process, k, 1, "");
        }
        for k in 0..SYS_KINDS {
            push_kind(&mut metrics, &mut group, Category::System, k, 1, "");
        }
        Self {
            spec,
            metrics,
            n_groups: group,
        }
    }

    /// Number of raw metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Number of semantic groups (the post-aggregation dimension).
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// Metric definitions.
    pub fn metrics(&self) -> &[RawMetric] {
        &self.metrics
    }

    /// `(category, count, example names)` rows — Table 3.
    pub fn category_table(&self) -> Vec<(Category, usize, Vec<String>)> {
        let cats = [
            Category::Cpu,
            Category::Memory,
            Category::Filesystem,
            Category::Network,
            Category::Process,
            Category::System,
        ];
        cats.iter()
            .map(|&c| {
                let members: Vec<&RawMetric> =
                    self.metrics.iter().filter(|m| m.category == c).collect();
                let examples = members.iter().take(2).map(|m| m.name.clone()).collect();
                (c, members.len(), examples)
            })
            .collect()
    }

    /// Expand a node's latent signal timeline into the raw `T × M` metric
    /// matrix. Deterministic in `(node_seed, metric, t)`. Parallel over
    /// metrics.
    pub fn expand(&self, latent: &[SignalFrame], node_seed: u64) -> Matrix {
        self.expand_range(latent, node_seed, 0, latent.len())
    }

    /// Expand only rows `[start, end)` of the raw matrix, bit-identical
    /// to the same rows of [`expand`](Self::expand) over the full
    /// timeline. Cumulative counter metrics replay their prefix sum over
    /// `[0, start)` in the same order as the full expansion, so chunked
    /// generation (the streaming tick replay, checkpoint-tail resume)
    /// reproduces the exact batch values without ever materialising the
    /// whole `T × M` matrix.
    pub fn expand_range(
        &self,
        latent: &[SignalFrame],
        node_seed: u64,
        start: usize,
        end: usize,
    ) -> Matrix {
        assert!(start <= end && end <= latent.len(), "row range in bounds");
        let t_len = end - start;
        let m = self.metrics.len();
        let mut out = Matrix::zeros(t_len, m);
        if t_len == 0 || m == 0 {
            return out;
        }
        // Column-parallel fill into a transposed scratch, then transpose:
        // each metric owns a contiguous row there.
        let mut scratch = vec![0.0f64; m * t_len];
        scratch
            .par_chunks_mut(t_len)
            .enumerate()
            .for_each(|(j, col)| {
                let def = &self.metrics[j];
                let share_w = match def.share {
                    Some((u, total)) => {
                        // Deterministic near-uniform share for this unit.
                        let w = 1.0 / total as f64;
                        w * (1.0 + 0.25 * noise_from(node_seed ^ mix(j as u64) ^ u as u64))
                    }
                    None => 1.0,
                };
                // Counters accumulate from t = 0; replay the prefix with
                // the identical addition order so the range is bit-exact.
                let mut counter_acc = 0.0f64;
                if matches!(def.transform, Transform::Counter) {
                    for frame in &latent[..start] {
                        let base = def.scale * frame[def.signal] * share_w + def.offset;
                        counter_acc += base.max(0.0);
                    }
                }
                for (t, frame) in latent.iter().enumerate().take(end).skip(start) {
                    let sig_t = match def.transform {
                        Transform::Lagged(lag) => {
                            let idx = t.saturating_sub(lag);
                            latent[idx][def.signal]
                        }
                        _ => frame[def.signal],
                    };
                    let base = def.scale * sig_t * share_w + def.offset;
                    let n = def.noise * noise_from(node_seed ^ ((j as u64) << 32) ^ t as u64);
                    let v = match def.transform {
                        Transform::Counter => {
                            counter_acc += base.max(0.0);
                            counter_acc
                        }
                        Transform::Saturated => (base + n).min(def.scale * 0.7 + def.offset),
                        _ => base + n,
                    };
                    col[t - start] = v;
                }
            });
        for t in 0..t_len {
            for j in 0..m {
                out[(t, j)] = scratch[j * t_len + t];
            }
        }
        out
    }

    /// Group ids per raw metric, for the semantic-aggregation step.
    pub fn group_ids(&self) -> Vec<usize> {
        self.metrics.iter().map(|m| m.group).collect()
    }

    /// The latent signal each group projects (useful for diagnostics).
    pub fn group_signal(&self, group: usize) -> Option<usize> {
        self.metrics
            .iter()
            .find(|m| m.group == group)
            .map(|m| m.signal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::idle_frame;

    #[test]
    fn full_catalog_matches_table3_exactly() {
        let cat = MetricCatalog::build(CatalogSpec::full());
        assert_eq!(cat.len(), 3014, "paper Table 2/3: 3,014 metrics");
        let table = cat.category_table();
        let counts: Vec<usize> = table.iter().map(|(_, c, _)| *c).collect();
        assert_eq!(counts, vec![1378, 945, 254, 381, 12, 44]);
    }

    #[test]
    fn metric_names_are_unique() {
        let cat = MetricCatalog::build(CatalogSpec::scaled());
        let mut names: Vec<&String> = cat.metrics().iter().map(|m| &m.name).collect();
        names.sort();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate raw metric names");
    }

    #[test]
    fn groups_partition_metrics() {
        let cat = MetricCatalog::build(CatalogSpec::scaled());
        let gids = cat.group_ids();
        assert_eq!(gids.len(), cat.len());
        let max = *gids.iter().max().unwrap();
        assert_eq!(max + 1, cat.n_groups());
        // Per-core kinds form groups of `cores` members.
        let counts = {
            let mut c = vec![0usize; cat.n_groups()];
            for &g in &gids {
                c[g] += 1;
            }
            c
        };
        assert!(counts.contains(&cat.spec.cores));
        assert!(counts.contains(&1));
    }

    fn ramp_latent(t_len: usize) -> Vec<SignalFrame> {
        (0..t_len)
            .map(|t| {
                let mut f = idle_frame(t, 30.0);
                f[Signal::CpuUser as usize] = t as f64 / t_len as f64;
                f[Signal::MemUsed as usize] = 0.5;
                f
            })
            .collect()
    }

    #[test]
    fn expansion_shape_and_determinism() {
        let cat = MetricCatalog::build(CatalogSpec::small());
        let latent = ramp_latent(50);
        let a = cat.expand(&latent, 42);
        let b = cat.expand(&latent, 42);
        assert_eq!(a.shape(), (50, cat.len()));
        assert_eq!(a, b);
        let c = cat.expand(&latent, 43);
        assert_ne!(a, c, "different node seeds must differ");
    }

    #[test]
    fn expand_range_is_bit_identical_to_full_expansion() {
        let cat = MetricCatalog::build(CatalogSpec::small());
        let latent = ramp_latent(90);
        let full = cat.expand(&latent, 42);
        for (start, end) in [(0, 90), (0, 17), (17, 40), (40, 90), (89, 90), (30, 30)] {
            let part = cat.expand_range(&latent, 42, start, end);
            assert_eq!(part.shape(), (end - start, cat.len()));
            for t in start..end {
                for j in 0..cat.len() {
                    assert_eq!(
                        part[(t - start, j)].to_bits(),
                        full[(t, j)].to_bits(),
                        "cell ({t},{j}) of range {start}..{end}"
                    );
                }
            }
        }
    }

    #[test]
    fn per_core_members_are_highly_correlated() {
        // Metrics of the same group track the same signal → the semantic
        // aggregation premise holds.
        let cat = MetricCatalog::build(CatalogSpec::small());
        let latent = ramp_latent(200);
        let m = cat.expand(&latent, 7);
        // Find a per-core gauge group bound to CpuUser.
        let defs = cat.metrics();
        let group = defs
            .iter()
            .find(|d| {
                d.share.is_some()
                    && d.signal == Signal::CpuUser as usize
                    && matches!(d.transform, Transform::Gauge)
            })
            .map(|d| d.group)
            .expect("per-core cpu gauge group exists");
        let members: Vec<usize> = defs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.group == group)
            .map(|(i, _)| i)
            .collect();
        assert!(members.len() >= 2);
        let x = m.col(members[0]);
        let y = m.col(members[1]);
        let r = ns_linalg::stats::pearson(&x, &y);
        assert!(r > 0.95, "same-group correlation {r}");
    }

    #[test]
    fn counters_are_monotone() {
        let cat = MetricCatalog::build(CatalogSpec::small());
        let latent = ramp_latent(100);
        let m = cat.expand(&latent, 3);
        let counter_idx = cat
            .metrics()
            .iter()
            .position(|d| matches!(d.transform, Transform::Counter))
            .expect("counter metric exists");
        let col = m.col(counter_idx);
        for w in col.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "counter decreased");
        }
    }

    #[test]
    fn all_values_finite() {
        let cat = MetricCatalog::build(CatalogSpec::scaled());
        let latent = ramp_latent(60);
        let m = cat.expand(&latent, 1);
        assert!(m.as_slice().iter().all(|v| v.is_finite()));
    }
}
