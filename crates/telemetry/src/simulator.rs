//! Cluster simulation: turning a schedule into per-node latent signal
//! timelines, with anomaly injection.

use crate::anomaly::AnomalyEvent;
use crate::archetype::JobArchetype;
use crate::schedule::Schedule;
use crate::signals::SignalFrame;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Generate the latent signal timeline for one node from the schedule.
///
/// Each `(job, node)` pair gets its own deterministic noise stream, so
/// gang members produce *similar but not identical* traces — exactly the
/// Characteristic-2 structure the clustering stage exploits.
pub fn node_latent(
    schedule: &Schedule,
    node: usize,
    interval_s: f64,
    seed: u64,
) -> Vec<SignalFrame> {
    let mut out = Vec::with_capacity(schedule.horizon);
    for seg in schedule.node_timeline(node) {
        let (archetype, intensity, stream) = match seg.job {
            Some(idx) => {
                let j = &schedule.jobs[idx];
                (
                    j.archetype,
                    j.intensity,
                    seed ^ ((j.job_id as u64) << 20) ^ node as u64,
                )
            }
            None => (
                JobArchetype::Idle,
                1.0,
                seed ^ 0xDEAD ^ ((node as u64) << 8) ^ seg.start as u64,
            ),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(stream);
        let len = seg.len().max(1);
        for t in seg.start..seg.end {
            let rel = (t - seg.start) as f64 / len as f64;
            out.push(archetype.frame(rel, intensity, t, interval_s, &mut rng));
        }
    }
    debug_assert_eq!(out.len(), schedule.horizon);
    out
}

/// Generate latent timelines for every node (parallel) and apply the
/// anomaly injection plan.
pub fn simulate_cluster(
    schedule: &Schedule,
    events: &[AnomalyEvent],
    interval_s: f64,
    seed: u64,
) -> Vec<Vec<SignalFrame>> {
    let mut latent: Vec<Vec<SignalFrame>> = (0..schedule.n_nodes)
        .into_par_iter()
        .map(|n| node_latent(schedule, n, interval_s, seed))
        .collect();
    for e in events {
        if e.node >= latent.len() {
            continue;
        }
        let timeline = &mut latent[e.node];
        let end = e.end.min(timeline.len());
        let start = e.start.min(end);
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ 0xA50A ^ ((e.node as u64) << 32) ^ e.start as u64);
        e.kind.inject(&mut timeline[start..end], &mut rng);
    }
    latent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyKind;
    use crate::schedule::ScheduleConfig;
    use crate::signals::Signal;

    fn small_schedule() -> Schedule {
        Schedule::generate(&ScheduleConfig {
            n_nodes: 4,
            horizon: 400,
            mean_interarrival: 8.0,
            min_duration: 20,
            max_duration: 120,
            max_width: 2,
            seed: 5,
        })
    }

    #[test]
    fn latent_covers_horizon_for_all_nodes() {
        let s = small_schedule();
        for n in 0..s.n_nodes {
            let latent = node_latent(&s, n, 30.0, 1);
            assert_eq!(latent.len(), s.horizon);
            assert!(latent.iter().all(|f| f.iter().all(|v| v.is_finite())));
        }
    }

    #[test]
    fn gang_members_have_similar_patterns() {
        let s = small_schedule();
        let gang = s
            .jobs
            .iter()
            .find(|j| j.nodes.len() >= 2)
            .expect("gang job");
        let a = node_latent(&s, gang.nodes[0], 30.0, 1);
        let b = node_latent(&s, gang.nodes[1], 30.0, 1);
        // Mean CPU over the job span must be close, but traces not equal.
        let span = gang.start..gang.end;
        let mean = |l: &[SignalFrame]| {
            span.clone()
                .map(|t| l[t][Signal::CpuUser as usize])
                .sum::<f64>()
                / span.len() as f64
        };
        let (ma, mb) = (mean(&a), mean(&b));
        assert!((ma - mb).abs() < 0.1, "gang means {ma} vs {mb}");
        let identical = span.clone().all(|t| a[t] == b[t]);
        assert!(!identical, "gang traces should differ in noise");
    }

    #[test]
    fn injection_changes_only_the_event_window() {
        let s = small_schedule();
        let clean = simulate_cluster(&s, &[], 30.0, 2);
        let event = AnomalyEvent {
            node: 1,
            kind: AnomalyKind::CpuOverload,
            start: 100,
            end: 140,
        };
        let dirty = simulate_cluster(&s, &[event], 30.0, 2);
        // Outside the window everything matches.
        for t in (0..90).chain(150..s.horizon) {
            assert_eq!(clean[1][t], dirty[1][t], "leak outside window at t={t}");
        }
        // Inside it, CPU goes up.
        let cpu_clean: f64 = (100..140)
            .map(|t| clean[1][t][Signal::CpuUser as usize])
            .sum();
        let cpu_dirty: f64 = (100..140)
            .map(|t| dirty[1][t][Signal::CpuUser as usize])
            .sum();
        assert!(cpu_dirty > cpu_clean + 1.0);
        // Other nodes untouched.
        for t in 0..s.horizon {
            assert_eq!(clean[0][t], dirty[0][t]);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let s = small_schedule();
        let a = simulate_cluster(&s, &[], 30.0, 3);
        let b = simulate_cluster(&s, &[], 30.0, 3);
        assert_eq!(a, b);
    }
}
