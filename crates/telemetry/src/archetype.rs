//! Job archetypes: workload families that drive the latent signals.
//!
//! Each archetype produces a characteristic multi-phase signal trajectory.
//! The *phases* are the paper's sub-patterns (Characteristic 3): a single
//! job segment is not statistically uniform — compute phases alternate
//! with checkpoints, map phases hand over to shuffles, and so on. Jobs of
//! the same archetype on different nodes produce near-identical patterns
//! (Characteristic 2), differing only in noise and a per-job intensity.

use crate::signals::{clamp_frame, idle_frame, Signal, SignalFrame};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Workload family. `Idle` models the between-jobs waiting state, which
/// the paper treats as "a special type of job".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobArchetype {
    /// MPI-style compute-bound solver: alternating compute sub-phases with
    /// periodic checkpoint bursts to disk.
    ComputeBound,
    /// Memory-intensive workload: large allocations ramp residency up,
    /// then sustained access with page-fault activity.
    MemoryIntensive,
    /// I/O-heavy pipeline: bursty disk reads/writes, moderate CPU.
    IoHeavy,
    /// Communication-dominated workload: heavy RX/TX with halo-exchange
    /// rhythm, moderate CPU.
    NetworkHeavy,
    /// Map → shuffle → reduce analytics job: three markedly different
    /// sub-patterns inside one segment.
    DataAnalytics,
    /// Idle waiting state between scheduled jobs.
    Idle,
}

/// The archetypes jobs are sampled from (Idle is scheduler-generated).
pub const SCHEDULABLE_ARCHETYPES: [JobArchetype; 5] = [
    JobArchetype::ComputeBound,
    JobArchetype::MemoryIntensive,
    JobArchetype::IoHeavy,
    JobArchetype::NetworkHeavy,
    JobArchetype::DataAnalytics,
];

impl JobArchetype {
    pub fn name(self) -> &'static str {
        match self {
            JobArchetype::ComputeBound => "compute_bound",
            JobArchetype::MemoryIntensive => "memory_intensive",
            JobArchetype::IoHeavy => "io_heavy",
            JobArchetype::NetworkHeavy => "network_heavy",
            JobArchetype::DataAnalytics => "data_analytics",
            JobArchetype::Idle => "idle",
        }
    }

    /// Sub-pattern phase id at relative position `rel_t ∈ [0, 1]` within
    /// the job. Used both for generation and by tests that verify
    /// sub-pattern variation exists.
    pub fn phase(self, rel_t: f64) -> usize {
        let rel_t = rel_t.clamp(0.0, 1.0);
        match self {
            JobArchetype::ComputeBound => {
                if rel_t < 0.04 {
                    0 // init / setup
                } else if rel_t > 0.97 {
                    3 // teardown
                } else {
                    // Alternating compute (1) with short checkpoints (2)
                    // every ~12% of the job.
                    let cycle = ((rel_t - 0.04) / 0.12).fract();
                    if cycle > 0.85 {
                        2
                    } else {
                        1
                    }
                }
            }
            JobArchetype::MemoryIntensive => {
                if rel_t < 0.25 {
                    0 // allocation ramp
                } else if rel_t < 0.9 {
                    1 // steady access
                } else {
                    2 // writeback / release
                }
            }
            JobArchetype::IoHeavy => {
                // Read burst / process / write burst cycles.
                let cycle = (rel_t * 6.0).fract();
                if cycle < 0.4 {
                    0
                } else if cycle < 0.7 {
                    1
                } else {
                    2
                }
            }
            JobArchetype::NetworkHeavy => {
                if rel_t < 0.05 {
                    0
                } else {
                    1 + ((rel_t * 20.0) as usize % 2) // exchange vs compute beat
                }
            }
            JobArchetype::DataAnalytics => {
                if rel_t < 0.45 {
                    0 // map
                } else if rel_t < 0.7 {
                    1 // shuffle
                } else {
                    2 // reduce
                }
            }
            JobArchetype::Idle => 0,
        }
    }

    /// Latent signal frame at relative position `rel_t` within the job.
    ///
    /// `intensity` is a per-job scale in roughly `[0.7, 1.1]` sampled by
    /// the scheduler; `rng` supplies the observation noise; `t_index` and
    /// `interval_s` feed monotone signals (uptime).
    pub fn frame(
        self,
        rel_t: f64,
        intensity: f64,
        t_index: usize,
        interval_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> SignalFrame {
        let mut f = idle_frame(t_index, interval_s);
        let set = |f: &mut SignalFrame, s: Signal, v: f64| f[s as usize] = v;
        let phase = self.phase(rel_t);
        let i = intensity;
        match self {
            JobArchetype::Idle => {}
            JobArchetype::ComputeBound => match phase {
                0 => {
                    set(&mut f, Signal::CpuUser, 0.25 * i);
                    set(&mut f, Signal::CpuSystem, 0.10);
                    set(&mut f, Signal::DiskReadBytes, 0.5 * i);
                    set(&mut f, Signal::MemUsed, 0.2 * i);
                    set(&mut f, Signal::ProcsRunning, 0.5);
                    set(&mut f, Signal::OpenFds, 0.3);
                }
                1 => {
                    set(&mut f, Signal::CpuUser, 0.88 * i);
                    set(&mut f, Signal::CpuSystem, 0.05);
                    set(&mut f, Signal::LoadAvg, 0.9 * i);
                    set(&mut f, Signal::MemUsed, 0.55 * i);
                    set(&mut f, Signal::NetRxBytes, 0.25 * i);
                    set(&mut f, Signal::NetTxBytes, 0.25 * i);
                    set(&mut f, Signal::CtxSwitches, 0.4);
                    set(&mut f, Signal::ProcsRunning, 0.8);
                    set(&mut f, Signal::CpuTemp, 0.75 * i);
                    set(&mut f, Signal::PowerWatts, 0.85 * i);
                }
                2 => {
                    set(&mut f, Signal::CpuUser, 0.35 * i);
                    set(&mut f, Signal::CpuIoWait, 0.30);
                    set(&mut f, Signal::DiskWriteBytes, 0.9 * i);
                    set(&mut f, Signal::MemUsed, 0.55 * i);
                    set(&mut f, Signal::ProcsBlocked, 0.4);
                    set(&mut f, Signal::PowerWatts, 0.5 * i);
                }
                _ => {
                    set(&mut f, Signal::CpuUser, 0.15);
                    set(&mut f, Signal::DiskWriteBytes, 0.4);
                    set(&mut f, Signal::MemUsed, 0.15);
                }
            },
            JobArchetype::MemoryIntensive => match phase {
                0 => {
                    // Residency ramps with rel_t.
                    let ramp = (rel_t / 0.25).min(1.0);
                    set(&mut f, Signal::CpuUser, 0.4 * i);
                    set(&mut f, Signal::MemUsed, (0.15 + 0.65 * ramp) * i);
                    set(&mut f, Signal::PageFaults, 0.7 * i);
                    set(&mut f, Signal::MemCache, 0.3);
                    set(&mut f, Signal::ProcsRunning, 0.6);
                }
                1 => {
                    set(&mut f, Signal::CpuUser, 0.55 * i);
                    set(&mut f, Signal::MemUsed, 0.8 * i);
                    set(&mut f, Signal::MemKernel, 0.25);
                    set(&mut f, Signal::PageFaults, 0.25 * i);
                    set(&mut f, Signal::SwapUsed, 0.2 * i);
                    set(&mut f, Signal::CtxSwitches, 0.5);
                    set(&mut f, Signal::ProcsRunning, 0.7);
                    set(&mut f, Signal::PowerWatts, 0.6 * i);
                }
                _ => {
                    set(&mut f, Signal::CpuUser, 0.3 * i);
                    set(&mut f, Signal::CpuIoWait, 0.2);
                    set(&mut f, Signal::MemUsed, 0.5 * i);
                    set(&mut f, Signal::SwapUsed, 0.3 * i);
                    set(&mut f, Signal::PageFaults, 0.4 * i);
                    set(&mut f, Signal::DiskWriteBytes, 0.7 * i);
                }
            },
            JobArchetype::IoHeavy => match phase {
                0 => {
                    set(&mut f, Signal::CpuUser, 0.2 * i);
                    set(&mut f, Signal::CpuIoWait, 0.5 * i);
                    set(&mut f, Signal::DiskReadBytes, 0.95 * i);
                    set(&mut f, Signal::MemCache, 0.6);
                    set(&mut f, Signal::PageFaults, 0.35 * i);
                    set(&mut f, Signal::ProcsBlocked, 0.5);
                    set(&mut f, Signal::OpenFds, 0.7);
                }
                1 => {
                    set(&mut f, Signal::CpuUser, 0.6 * i);
                    set(&mut f, Signal::MemUsed, 0.45 * i);
                    set(&mut f, Signal::MemCache, 0.7);
                    set(&mut f, Signal::ProcsRunning, 0.6);
                }
                _ => {
                    set(&mut f, Signal::CpuUser, 0.25 * i);
                    set(&mut f, Signal::CpuIoWait, 0.45 * i);
                    set(&mut f, Signal::DiskWriteBytes, 0.9 * i);
                    set(&mut f, Signal::DiskUsedFrac, 0.55 + 0.15 * i);
                    set(&mut f, Signal::OpenFds, 0.6);
                    set(&mut f, Signal::ProcsBlocked, 0.45);
                }
            },
            JobArchetype::NetworkHeavy => match phase {
                0 => {
                    set(&mut f, Signal::CpuUser, 0.2);
                    set(&mut f, Signal::NetSockets, 0.6 * i);
                    set(&mut f, Signal::NetRxBytes, 0.3);
                }
                1 => {
                    set(&mut f, Signal::CpuUser, 0.45 * i);
                    set(&mut f, Signal::CpuSystem, 0.25);
                    set(&mut f, Signal::NetRxBytes, 0.9 * i);
                    set(&mut f, Signal::NetTxBytes, 0.85 * i);
                    set(&mut f, Signal::NetSockets, 0.7 * i);
                    set(&mut f, Signal::NetRetrans, 0.18 * i);
                    set(&mut f, Signal::CtxSwitches, 0.7);
                    set(&mut f, Signal::ProcsBlocked, 0.2);
                    set(&mut f, Signal::ProcsRunning, 0.5);
                }
                _ => {
                    set(&mut f, Signal::CpuUser, 0.65 * i);
                    set(&mut f, Signal::NetRxBytes, 0.35 * i);
                    set(&mut f, Signal::NetTxBytes, 0.3 * i);
                    set(&mut f, Signal::MemUsed, 0.4 * i);
                    set(&mut f, Signal::PowerWatts, 0.55 * i);
                }
            },
            JobArchetype::DataAnalytics => match phase {
                0 => {
                    set(&mut f, Signal::CpuUser, 0.8 * i);
                    set(&mut f, Signal::DiskReadBytes, 0.6 * i);
                    set(&mut f, Signal::MemUsed, 0.5 * i);
                    set(&mut f, Signal::MemCache, 0.5);
                    set(&mut f, Signal::ProcsRunning, 0.75);
                    set(&mut f, Signal::PowerWatts, 0.7 * i);
                }
                1 => {
                    set(&mut f, Signal::CpuUser, 0.3 * i);
                    set(&mut f, Signal::CpuSystem, 0.3);
                    set(&mut f, Signal::NetRxBytes, 0.8 * i);
                    set(&mut f, Signal::NetTxBytes, 0.8 * i);
                    set(&mut f, Signal::NetSockets, 0.6);
                    set(&mut f, Signal::NetRetrans, 0.12 * i);
                    set(&mut f, Signal::CtxSwitches, 0.8);
                }
                _ => {
                    set(&mut f, Signal::CpuUser, 0.7 * i);
                    set(&mut f, Signal::MemUsed, 0.65 * i);
                    set(&mut f, Signal::DiskWriteBytes, 0.75 * i);
                    set(&mut f, Signal::ProcsRunning, 0.6);
                    set(&mut f, Signal::PowerWatts, 0.65 * i);
                }
            },
        }
        // Keep the CPU books consistent and add observation noise.
        let busy = f[Signal::CpuUser as usize]
            + f[Signal::CpuSystem as usize]
            + f[Signal::CpuIoWait as usize];
        f[Signal::CpuIdle as usize] = (1.0 - busy).max(0.0);
        for (k, v) in f.iter_mut().enumerate() {
            if k == Signal::Uptime as usize {
                continue;
            }
            let noise: f64 = rng.gen_range(-1.0..1.0);
            *v += noise * 0.015 * (0.2 + *v);
        }
        clamp_frame(&mut f);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    #[test]
    fn all_archetypes_produce_finite_frames() {
        let mut r = rng();
        for a in SCHEDULABLE_ARCHETYPES
            .iter()
            .chain([JobArchetype::Idle].iter())
        {
            for step in 0..50 {
                let f = a.frame(step as f64 / 49.0, 0.9, step, 30.0, &mut r);
                assert!(f.iter().all(|v| v.is_finite() && *v >= 0.0), "{a:?}");
            }
        }
    }

    #[test]
    fn compute_bound_has_checkpoint_subpattern() {
        // Phases 1 (compute) and 2 (checkpoint) must both occur.
        let phases: Vec<usize> = (0..1000)
            .map(|i| JobArchetype::ComputeBound.phase(i as f64 / 999.0))
            .collect();
        assert!(phases.contains(&0) && phases.contains(&1) && phases.contains(&2));
        // Checkpoints are short relative to compute.
        let n1 = phases.iter().filter(|&&p| p == 1).count();
        let n2 = phases.iter().filter(|&&p| p == 2).count();
        assert!(n1 > 2 * n2, "compute {n1} vs checkpoint {n2}");
    }

    #[test]
    fn analytics_phases_have_distinct_signatures() {
        let mut r = rng();
        let map = JobArchetype::DataAnalytics.frame(0.2, 1.0, 0, 30.0, &mut r);
        let shuffle = JobArchetype::DataAnalytics.frame(0.6, 1.0, 0, 30.0, &mut r);
        let reduce = JobArchetype::DataAnalytics.frame(0.85, 1.0, 0, 30.0, &mut r);
        // Map is CPU-heavy, shuffle is network-heavy, reduce writes disk.
        assert!(map[Signal::CpuUser as usize] > shuffle[Signal::CpuUser as usize]);
        assert!(shuffle[Signal::NetRxBytes as usize] > map[Signal::NetRxBytes as usize]);
        assert!(reduce[Signal::DiskWriteBytes as usize] > map[Signal::DiskWriteBytes as usize]);
    }

    #[test]
    fn memory_intensive_ramps_memory() {
        let mut r = rng();
        let early = JobArchetype::MemoryIntensive.frame(0.05, 1.0, 0, 30.0, &mut r);
        let late = JobArchetype::MemoryIntensive.frame(0.5, 1.0, 0, 30.0, &mut r);
        assert!(late[Signal::MemUsed as usize] > early[Signal::MemUsed as usize] + 0.2);
    }

    #[test]
    fn idle_stays_idle() {
        let mut r = rng();
        let f = JobArchetype::Idle.frame(0.5, 1.0, 10, 30.0, &mut r);
        assert!(f[Signal::CpuUser as usize] < 0.1);
        assert!(f[Signal::CpuIdle as usize] > 0.8);
    }

    #[test]
    fn same_archetype_same_relative_position_is_similar_across_noise() {
        // Two different noise streams: structural values must stay close
        // (this is what makes cross-node patterns cluster together).
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(99);
        let f1 = JobArchetype::NetworkHeavy.frame(0.5, 1.0, 0, 30.0, &mut r1);
        let f2 = JobArchetype::NetworkHeavy.frame(0.5, 1.0, 0, 30.0, &mut r2);
        for (a, b) in f1.iter().zip(f2.iter()) {
            assert!((a - b).abs() < 0.2, "{a} vs {b}");
        }
    }

    #[test]
    fn intensity_scales_load() {
        let mut r = rng();
        let lo = JobArchetype::ComputeBound.frame(0.5, 0.7, 0, 30.0, &mut r);
        let hi = JobArchetype::ComputeBound.frame(0.5, 1.1, 0, 30.0, &mut r);
        assert!(hi[Signal::CpuUser as usize] > lo[Signal::CpuUser as usize]);
    }
}
