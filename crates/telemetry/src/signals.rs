//! Latent node-state signals.
//!
//! The simulator does not synthesise 3,014 raw metrics independently —
//! real node metrics are highly redundant projections of a much smaller
//! underlying state (which is exactly why the paper's reduction step
//! lands at ~1/10 of the raw dimension). We model that state explicitly:
//! every node carries [`NUM_SIGNALS`] latent signals over time, job
//! archetypes drive the signals, anomalies perturb them, and the metric
//! catalog expands them into thousands of correlated raw metrics.

use serde::{Deserialize, Serialize};

/// Indices into a signal frame. Values are *rates or fractions in
/// steady-state units*: CPU fractions in `[0, 1]`, byte rates normalised
/// to a 0–1 typical envelope, counts scaled similarly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum Signal {
    CpuUser = 0,
    CpuSystem = 1,
    CpuIoWait = 2,
    CpuIdle = 3,
    LoadAvg = 4,
    CtxSwitches = 5,
    MemUsed = 6,
    MemCache = 7,
    MemKernel = 8,
    SwapUsed = 9,
    PageFaults = 10,
    DiskReadBytes = 11,
    DiskWriteBytes = 12,
    DiskUsedFrac = 13,
    OpenFds = 14,
    NetRxBytes = 15,
    NetTxBytes = 16,
    NetSockets = 17,
    NetRetrans = 18,
    ProcsRunning = 19,
    ProcsBlocked = 20,
    CpuTemp = 21,
    PowerWatts = 22,
    Uptime = 23,
}

/// Number of latent signals per node.
pub const NUM_SIGNALS: usize = 24;

/// All signals, in index order.
pub const ALL_SIGNALS: [Signal; NUM_SIGNALS] = [
    Signal::CpuUser,
    Signal::CpuSystem,
    Signal::CpuIoWait,
    Signal::CpuIdle,
    Signal::LoadAvg,
    Signal::CtxSwitches,
    Signal::MemUsed,
    Signal::MemCache,
    Signal::MemKernel,
    Signal::SwapUsed,
    Signal::PageFaults,
    Signal::DiskReadBytes,
    Signal::DiskWriteBytes,
    Signal::DiskUsedFrac,
    Signal::OpenFds,
    Signal::NetRxBytes,
    Signal::NetTxBytes,
    Signal::NetSockets,
    Signal::NetRetrans,
    Signal::ProcsRunning,
    Signal::ProcsBlocked,
    Signal::CpuTemp,
    Signal::PowerWatts,
    Signal::Uptime,
];

impl Signal {
    /// Canonical snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Signal::CpuUser => "cpu_user",
            Signal::CpuSystem => "cpu_system",
            Signal::CpuIoWait => "cpu_iowait",
            Signal::CpuIdle => "cpu_idle",
            Signal::LoadAvg => "load_avg",
            Signal::CtxSwitches => "ctx_switches",
            Signal::MemUsed => "mem_used",
            Signal::MemCache => "mem_cache",
            Signal::MemKernel => "mem_kernel",
            Signal::SwapUsed => "swap_used",
            Signal::PageFaults => "page_faults",
            Signal::DiskReadBytes => "disk_read_bytes",
            Signal::DiskWriteBytes => "disk_write_bytes",
            Signal::DiskUsedFrac => "disk_used_frac",
            Signal::OpenFds => "open_fds",
            Signal::NetRxBytes => "net_rx_bytes",
            Signal::NetTxBytes => "net_tx_bytes",
            Signal::NetSockets => "net_sockets",
            Signal::NetRetrans => "net_retrans",
            Signal::ProcsRunning => "procs_running",
            Signal::ProcsBlocked => "procs_blocked",
            Signal::CpuTemp => "cpu_temp",
            Signal::PowerWatts => "power_watts",
            Signal::Uptime => "uptime",
        }
    }

    /// Signal from its frame index.
    pub fn from_index(i: usize) -> Signal {
        ALL_SIGNALS[i]
    }
}

/// One timestamp's worth of latent state.
pub type SignalFrame = [f64; NUM_SIGNALS];

/// A zeroed frame with baseline idle values.
pub fn idle_frame(t_index: usize, interval_s: f64) -> SignalFrame {
    let mut f = [0.0; NUM_SIGNALS];
    f[Signal::CpuUser as usize] = 0.02;
    f[Signal::CpuSystem as usize] = 0.01;
    f[Signal::CpuIdle as usize] = 0.97;
    f[Signal::LoadAvg as usize] = 0.02;
    f[Signal::CtxSwitches as usize] = 0.05;
    f[Signal::MemUsed as usize] = 0.08;
    f[Signal::MemCache as usize] = 0.10;
    f[Signal::MemKernel as usize] = 0.05;
    f[Signal::OpenFds as usize] = 0.05;
    f[Signal::NetSockets as usize] = 0.03;
    f[Signal::ProcsRunning as usize] = 0.02;
    f[Signal::CpuTemp as usize] = 0.30;
    f[Signal::PowerWatts as usize] = 0.15;
    f[Signal::DiskUsedFrac as usize] = 0.40;
    f[Signal::Uptime as usize] = t_index as f64 * interval_s / 1e7;
    f
}

/// Clamp frame entries to physically sensible ranges (fractions to
/// `[0, 1.5]` to keep saturation effects visible, counters non-negative).
pub fn clamp_frame(f: &mut SignalFrame) {
    for v in f.iter_mut() {
        if !v.is_finite() {
            *v = 0.0;
        }
        *v = v.clamp(0.0, 1.5);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_indices_are_dense_and_unique() {
        for (i, s) in ALL_SIGNALS.iter().enumerate() {
            assert_eq!(*s as usize, i);
            assert_eq!(Signal::from_index(i), *s);
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = ALL_SIGNALS.iter().map(|s| s.name()).collect();
        names.sort();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn idle_frame_is_mostly_idle() {
        let f = idle_frame(0, 30.0);
        assert!(f[Signal::CpuIdle as usize] > 0.9);
        assert!(f[Signal::CpuUser as usize] < 0.1);
        assert!(f[Signal::SwapUsed as usize] == 0.0);
    }

    #[test]
    fn clamp_fixes_hostile_values() {
        let mut f = [0.0; NUM_SIGNALS];
        f[0] = f64::NAN;
        f[1] = -3.0;
        f[2] = 99.0;
        clamp_frame(&mut f);
        assert_eq!(f[0], 0.0);
        assert_eq!(f[1], 0.0);
        assert_eq!(f[2], 1.5);
    }
}
