//! Thin blocking wire client: drives a remote `Engine::serve_ingest`
//! endpoint with [`ns_wire`] frames.
//!
//! This is the collector side of the deployment story — what runs on (or
//! next to) each monitored node, feeding samples to the central
//! detector. It stays deliberately dumb: one blocking TCP stream, one
//! frame at a time, no retry queue. Backpressure is the kernel's — when
//! the server stops reading (its engine queues are full), `send_tick`
//! blocks in `write`.
//!
//! The client doubles as the socket-fault rig: constructed
//! [`with_faults`](IngestClient::with_faults), it perturbs its own
//! transport per a seeded [`SocketFaultPlan`] — partial writes, stalls,
//! clean disconnect/reconnect cycles, torn frames with resend, duplicate
//! connections — while keeping the delivered tick sequence equivalent,
//! so the differential suite can prove the server+engine absorb all of
//! it without changing a verdict bit.

use crate::faults::{SocketFaultAction, SocketFaultCounters, SocketFaultInjector, SocketFaultPlan};
use nodesentry_core::Tick;
use ns_wire::{
    encode_frame, error_code, Frame, FrameAssembler, ReportMsg, Role, ScoringPrecision, VerdictMsg,
    WireError,
};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// How long [`IngestClient::finish`] and verdict subscriptions wait for
/// the server before giving up. Finalizing scores every open segment, so
/// this is generous; it exists to fail tests instead of hanging them.
const RESPONSE_DEADLINE: Duration = Duration::from_secs(600);

/// Blocking wire client for one ingest connection.
pub struct IngestClient {
    addr: SocketAddr,
    stream: TcpStream,
    asm: FrameAssembler,
    /// Frames decoded but not yet consumed (e.g. a current pong arriving
    /// in the same read chunk as a stale one).
    pending: VecDeque<Frame>,
    faults: Option<SocketFaultInjector>,
    /// Which socket faults this session actually exercised.
    pub fault_counters: SocketFaultCounters,
    /// Last tick frame confirmed ingested (via ping) — the bytes a
    /// duplicate connection re-sends.
    last_synced_tick: Option<Vec<u8>>,
    /// Most recent tick frame sent but not yet covered by a ping.
    last_sent_tick: Option<Vec<u8>>,
    next_token: u64,
}

fn connect(addr: &SocketAddr) -> Result<TcpStream, WireError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    Ok(stream)
}

impl IngestClient {
    /// Connect to a serving engine, e.g. `"127.0.0.1:9500"`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Self::with_faults(addr, SocketFaultPlan::none())
    }

    /// Connect with a seeded socket-fault schedule perturbing every
    /// outgoing frame (see [`SocketFaultPlan`]).
    pub fn with_faults(addr: impl ToSocketAddrs, plan: SocketFaultPlan) -> Result<Self, WireError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| WireError::Io("address resolved to nothing".into()))?;
        let stream = connect(&addr)?;
        let faults = if plan.is_none() {
            None
        } else {
            Some(SocketFaultInjector::new(plan))
        };
        Ok(IngestClient {
            addr,
            stream,
            asm: FrameAssembler::new(),
            pending: VecDeque::new(),
            faults,
            fault_counters: SocketFaultCounters::default(),
            last_synced_tick: None,
            last_sent_tick: None,
            next_token: 1,
        })
    }

    /// The server address this client is (re)connecting to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sync in-flight frames, close cleanly, and open a fresh
    /// connection. Safe mid-stream: the ping guarantees everything sent
    /// so far is already in the engine before the socket drops.
    pub fn reconnect(&mut self) -> Result<(), WireError> {
        self.ping()?;
        self.stream = connect(&self.addr)?;
        self.asm = FrameAssembler::new();
        self.pending.clear();
        Ok(())
    }

    /// Send one tick, applying the next scheduled socket fault (if any).
    pub fn send_tick(&mut self, tick: &Tick) -> Result<(), WireError> {
        let bytes = encode_frame(&Frame::Tick(tick.clone()));
        let action = match self.faults.as_mut() {
            Some(inj) => inj.next_action(),
            None => SocketFaultAction::Clean,
        };
        match action {
            SocketFaultAction::Clean => self.stream.write_all(&bytes)?,
            SocketFaultAction::PartialWrite { chunks } => {
                self.fault_counters.partial_writes += 1;
                let step = bytes.len().div_ceil(chunks.max(1));
                for chunk in bytes.chunks(step.max(1)) {
                    self.stream.write_all(chunk)?;
                    self.stream.flush()?;
                    // A beat between chunks so the server's read sees a
                    // genuinely split frame, not one coalesced buffer.
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            SocketFaultAction::Stall { ms } => {
                self.fault_counters.stalls += 1;
                std::thread::sleep(Duration::from_millis(ms));
                self.stream.write_all(&bytes)?;
            }
            SocketFaultAction::Disconnect => {
                self.fault_counters.disconnects += 1;
                self.reconnect()?;
                self.stream.write_all(&bytes)?;
            }
            SocketFaultAction::TornResend => {
                self.fault_counters.torn_resends += 1;
                // Sync so the abort can't take committed frames with it,
                // tear this frame mid-write, then resend it whole on a
                // fresh connection — at-least-once, server-side the torn
                // prefix is dropped and counted.
                self.ping()?;
                let cut = (bytes.len() / 2).max(1);
                self.stream.write_all(&bytes[..cut])?;
                self.stream.flush()?;
                self.stream = connect(&self.addr)?;
                self.asm = FrameAssembler::new();
                self.pending.clear();
                self.stream.write_all(&bytes)?;
            }
            SocketFaultAction::DuplicateConn => {
                self.fault_counters.duplicate_conns += 1;
                self.stream.write_all(&bytes)?;
                // Redeliver an already-consumed tick on a second
                // connection: the ping proves the engine consumed it, so
                // the copy must be rejected as a duplicate.
                self.ping()?;
                if let Some(dup) = self.last_synced_tick.clone() {
                    let mut second = connect(&self.addr)?;
                    second.write_all(&dup)?;
                    second.flush()?;
                }
            }
        }
        self.last_sent_tick = Some(bytes);
        Ok(())
    }

    /// Announce the scoring tier this client's consumers expect and
    /// confirm the engine runs it. The server refuses a mismatched
    /// session with a typed `Error` frame; the trailing ping makes that
    /// refusal synchronous instead of surfacing on some later read.
    /// Clients that never announce are accepted under any tier.
    pub fn announce_precision(&mut self, precision: ScoringPrecision) -> Result<(), WireError> {
        self.stream.write_all(&encode_frame(&Frame::Hello {
            role: Role::Ingest,
            client_id: 0,
            precision: Some(precision),
        }))?;
        self.stream.flush()?;
        self.ping().map(|_| ())
    }

    /// Send one replay cycle (or any batch) tick by tick.
    pub fn send_cycle(&mut self, ticks: &[Tick]) -> Result<(), WireError> {
        for t in ticks {
            self.send_tick(t)?;
        }
        Ok(())
    }

    /// Round-trip a ping. The pong confirms every frame sent before it
    /// has been ingested, so the returned duration is a true end-to-end
    /// (client → engine → client) latency sample.
    pub fn ping(&mut self) -> Result<Duration, WireError> {
        let token = self.next_token;
        self.next_token += 1;
        let t0 = Instant::now();
        self.stream
            .write_all(&encode_frame(&Frame::Ping { token }))?;
        self.stream.flush()?;
        loop {
            match self.read_frame_deadline(t0)? {
                Frame::Pong { token: got } if got == token => break,
                Frame::Pong { .. } => continue, // stale token from a prior ping
                Frame::Error { code, msg } => {
                    return Err(server_error(code, msg));
                }
                other => {
                    return Err(WireError::Decode(format!(
                        "unexpected {} frame while waiting for pong",
                        other.kind_label()
                    )))
                }
            }
        }
        let rtt = t0.elapsed();
        self.last_synced_tick = self.last_sent_tick.take().or(self.last_synced_tick.take());
        Ok(rtt)
    }

    /// Finalize the run: the server flushes every node, then streams the
    /// complete verdict set and a closing report back on this connection.
    pub fn finish(mut self) -> Result<(Vec<VerdictMsg>, ReportMsg), WireError> {
        self.stream.write_all(&encode_frame(&Frame::Finish))?;
        self.stream.flush()?;
        let initial: Vec<Frame> = self.pending.drain(..).collect();
        collect_verdicts(&mut self.stream, &mut self.asm, initial)
    }

    /// Pop the next whole frame, polling until [`RESPONSE_DEADLINE`].
    fn read_frame_deadline(&mut self, t0: Instant) -> Result<Frame, WireError> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(f) = self.pending.pop_front() {
                return Ok(f);
            }
            if t0.elapsed() > RESPONSE_DEADLINE {
                return Err(WireError::Io("server response deadline exceeded".into()));
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(WireError::Io("server closed the connection".into()));
                }
                Ok(n) => self.pending.extend(self.asm.push(&buf[..n])?),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

fn server_error(code: u8, msg: String) -> WireError {
    let label = match code {
        error_code::REJECTED => "rejected",
        error_code::PROTOCOL => "protocol",
        error_code::ENGINE => "engine",
        _ => "unknown",
    };
    WireError::Io(format!("server error ({label}): {msg}"))
}

/// Minimal blocking HTTP/1.1 GET against the ns-obs exporter — enough
/// for ops tooling and examples to poll `/statusz`, `/metrics`, or the
/// debug routes without an HTTP client dependency. Returns the response
/// **body**; any non-2xx status is an error carrying the status line.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<String> {
    use std::io::{Error, ErrorKind::InvalidData};
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: ns\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| Error::new(InvalidData, "response without header/body split"))?;
    let status = head.lines().next().unwrap_or_default();
    let code: u16 = status
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    if !(200..300).contains(&code) {
        return Err(Error::new(InvalidData, format!("GET {path}: {status}")));
    }
    Ok(body.to_string())
}

/// Subscribe to the verdict stream on its own connection: blocks until
/// some ingest client finalizes the run, then returns the whole verdict
/// set plus the closing report. Late subscribers (after the run already
/// finished) get the same retained stream.
pub fn subscribe_verdicts(
    addr: impl ToSocketAddrs,
) -> Result<(Vec<VerdictMsg>, ReportMsg), WireError> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| WireError::Io("address resolved to nothing".into()))?;
    let mut stream = connect(&addr)?;
    stream.write_all(&encode_frame(&Frame::Hello {
        role: Role::Verdicts,
        client_id: 0,
        precision: None,
    }))?;
    stream.flush()?;
    let mut asm = FrameAssembler::new();
    collect_verdicts(&mut stream, &mut asm, Vec::new())
}

/// Drain a verdict stream until its closing [`Frame::Report`],
/// processing any already-decoded `initial` frames first.
fn collect_verdicts(
    stream: &mut TcpStream,
    asm: &mut FrameAssembler,
    initial: Vec<Frame>,
) -> Result<(Vec<VerdictMsg>, ReportMsg), WireError> {
    let t0 = Instant::now();
    let mut verdicts = Vec::new();
    for frame in initial {
        match frame {
            Frame::Verdict(v) => verdicts.push(v),
            Frame::Report(r) => return Ok((verdicts, r)),
            Frame::Pong { .. } => continue,
            Frame::Error { code, msg } => return Err(server_error(code, msg)),
            other => {
                return Err(WireError::Decode(format!(
                    "unexpected {} frame in verdict stream",
                    other.kind_label()
                )))
            }
        }
    }
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => {
                return Err(WireError::Io(
                    "connection closed before the report frame".into(),
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if t0.elapsed() > RESPONSE_DEADLINE {
                    return Err(WireError::Io("server response deadline exceeded".into()));
                }
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        for frame in asm.push(&buf[..n])? {
            match frame {
                Frame::Verdict(v) => verdicts.push(v),
                Frame::Report(r) => return Ok((verdicts, r)),
                Frame::Pong { .. } => continue, // stale ping crossing finish
                Frame::Error { code, msg } => return Err(server_error(code, msg)),
                other => {
                    return Err(WireError::Decode(format!(
                        "unexpected {} frame in verdict stream",
                        other.kind_label()
                    )))
                }
            }
        }
    }
}
