//! `ns-telemetry` — a synthetic HPC cluster, end to end.
//!
//! The paper evaluates on production telemetry from the NG-Tianhe
//! supercomputer, which we cannot ship. This crate is the substitution
//! (documented in `DESIGN.md`): a full cluster simulator whose output has
//! the same *structure* the paper's method exploits —
//!
//! 1. **High node scale and metric dimension** — [`catalog`] expands a
//!    small latent node state into thousands of correlated raw metrics
//!    (exactly 3,014 with the full hardware shape, matching Table 3).
//! 2. **Dynamic job transitions and cross-node pattern correlation** —
//!    [`schedule`] gang-schedules jobs Slurm-style; [`archetype`] gives
//!    each workload family a characteristic signature; gang members see
//!    near-identical traces.
//! 3. **Sub-pattern variation inside a job** — archetypes are multi-phase
//!    (compute/checkpoint, map/shuffle/reduce, …).
//!
//! [`anomaly`] injects every fault class of Table 1 with exact ground
//! truth (the ChaosBlade substitute), and [`dataset`] wraps it all into
//! reproducible D1′/D2′ profiles with train/test splits.

pub mod anomaly;
pub mod archetype;
pub mod catalog;
pub mod client;
pub mod dataset;
pub mod faults;
pub mod replay;
pub mod schedule;
pub mod signals;
pub mod simulator;

pub use anomaly::{AnomalyEvent, AnomalyKind, InjectionConfig, ALL_ANOMALIES};
pub use archetype::JobArchetype;
pub use catalog::{CatalogSpec, Category, MetricCatalog};
pub use client::{http_get, subscribe_verdicts, IngestClient};
pub use dataset::{Dataset, DatasetProfile, DatasetStats};
pub use faults::{
    FaultEvent, FaultInjector, FaultKind, FaultOutcome, FaultPlan, FaultPlanSpec,
    SocketFaultAction, SocketFaultCounters, SocketFaultInjector, SocketFaultPlan, ALL_FAULTS,
};
pub use replay::TickReplay;
pub use schedule::{JobRecord, NodeSegment, Schedule, ScheduleConfig};
pub use signals::{Signal, SignalFrame, NUM_SIGNALS};
