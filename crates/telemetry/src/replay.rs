//! Streaming tick replay — step-major monitoring cycles generated in
//! bounded chunks.
//!
//! The deployment experiment replays a full cluster through the
//! `ns-stream` engine in the collector's real cadence: every node's
//! sample for one step lands in one cycle. Materialising each node's
//! whole raw `T × M` matrix up front is fine at 8–16 nodes but blows
//! past memory at the paper's 1,000-node scale (≈ gigabytes). The
//! replay instead keeps only a `chunk`-step window of raw rows per
//! node, refilled via [`Dataset::raw_rows`] — which is bit-identical
//! to the corresponding slice of [`Dataset::raw_node`], collection
//! losses included — so chunked replay feeds the engine the exact
//! same ticks as the naive full-matrix loop.
//!
//! [`TickReplay::from_step`] starts mid-horizon, which is how the
//! checkpoint/restore differential tests replay only the tail of a
//! stream after restoring an engine snapshot.

use crate::dataset::Dataset;
use nodesentry_core::Tick;
use ns_linalg::matrix::Matrix;
use rustc_hash::FxHashSet;

/// Step-major tick generator over a [`Dataset`], holding at most
/// `chunk` raw rows per node in memory.
pub struct TickReplay<'a> {
    ds: &'a Dataset,
    chunk: usize,
    /// Next step to emit.
    next: usize,
    /// First step covered by `bufs`.
    chunk_start: usize,
    /// Per-node raw rows for `[chunk_start, chunk_start + bufs[n].rows())`.
    bufs: Vec<Matrix>,
    /// Per-node job-transition steps (segment starts, excluding 0).
    transitions: Vec<FxHashSet<usize>>,
}

impl<'a> TickReplay<'a> {
    /// Replay the full horizon from step 0.
    pub fn new(ds: &'a Dataset, chunk: usize) -> Self {
        Self::from_step(ds, chunk, 0)
    }

    /// Replay starting at `start` (e.g. the tail after a checkpoint cut).
    pub fn from_step(ds: &'a Dataset, chunk: usize, start: usize) -> Self {
        assert!(chunk > 0, "chunk must be non-empty");
        let transitions = (0..ds.n_nodes())
            .map(|n| {
                ds.schedule
                    .node_timeline(n)
                    .iter()
                    .map(|seg| seg.start)
                    .filter(|&s| s > 0)
                    .collect()
            })
            .collect();
        Self {
            ds,
            chunk,
            next: start,
            chunk_start: start,
            bufs: Vec::new(),
            transitions,
        }
    }

    /// The step the next [`next_cycle`](Self::next_cycle) call will emit.
    pub fn next_step(&self) -> usize {
        self.next
    }

    /// Steps left to emit.
    pub fn remaining(&self) -> usize {
        self.ds.horizon().saturating_sub(self.next)
    }

    /// One monitoring cycle: every node's tick for the next step, in
    /// node order. `None` once the horizon is exhausted.
    pub fn next_cycle(&mut self) -> Option<Vec<Tick>> {
        let step = self.next;
        if step >= self.ds.horizon() {
            return None;
        }
        let buffered = self.bufs.first().map_or(0, Matrix::rows);
        if self.bufs.is_empty() || step >= self.chunk_start + buffered {
            self.refill(step);
        }
        let local = step - self.chunk_start;
        let cycle = self
            .bufs
            .iter()
            .enumerate()
            .map(|(n, raw)| Tick {
                node: n,
                step,
                values: raw.row(local).to_vec(),
                transition: self.transitions[n].contains(&step),
            })
            .collect();
        self.next = step + 1;
        Some(cycle)
    }

    fn refill(&mut self, start: usize) {
        let end = (start + self.chunk).min(self.ds.horizon());
        self.chunk_start = start;
        self.bufs = (0..self.ds.n_nodes())
            .map(|n| self.ds.raw_rows(n, start, end))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetProfile;

    #[test]
    fn chunked_replay_matches_full_matrices_bit_for_bit() {
        let ds = DatasetProfile::tiny().generate();
        let raws: Vec<Matrix> = (0..ds.n_nodes()).map(|n| ds.raw_node(n)).collect();
        // A chunk size that doesn't divide the horizon exercises the
        // partial final refill.
        let mut replay = TickReplay::new(&ds, 37);
        for step in 0..ds.horizon() {
            assert_eq!(replay.next_step(), step);
            let cycle = replay.next_cycle().expect("horizon not exhausted");
            assert_eq!(cycle.len(), ds.n_nodes());
            for (n, tick) in cycle.iter().enumerate() {
                assert_eq!((tick.node, tick.step), (n, step));
                let row = raws[n].row(step);
                assert_eq!(tick.values.len(), row.len());
                for (a, b) in tick.values.iter().zip(row) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
        assert!(replay.next_cycle().is_none());
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn offset_replay_resumes_mid_chunk_identically() {
        let ds = DatasetProfile::tiny().generate();
        let mut full = TickReplay::new(&ds, 50);
        let cut = 123; // deliberately not a multiple of the chunk size
        for _ in 0..cut {
            full.next_cycle().unwrap();
        }
        let mut tail = TickReplay::from_step(&ds, 50, cut);
        assert_eq!(tail.remaining(), ds.horizon() - cut);
        while let Some(expect) = full.next_cycle() {
            let got = tail.next_cycle().unwrap();
            assert_eq!(got.len(), expect.len());
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!(
                    (g.node, g.step, g.transition),
                    (e.node, e.step, e.transition)
                );
                for (a, b) in g.values.iter().zip(&e.values) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
        assert!(tail.next_cycle().is_none());
    }

    #[test]
    fn transition_flags_match_schedule_segment_starts() {
        let ds = DatasetProfile::tiny().generate();
        let mut replay = TickReplay::new(&ds, 128);
        let expected: Vec<FxHashSet<usize>> = (0..ds.n_nodes())
            .map(|n| {
                ds.schedule
                    .node_timeline(n)
                    .iter()
                    .map(|seg| seg.start)
                    .filter(|&s| s > 0)
                    .collect()
            })
            .collect();
        while let Some(cycle) = replay.next_cycle() {
            for t in &cycle {
                assert_eq!(t.transition, expected[t.node].contains(&t.step));
            }
        }
    }
}
