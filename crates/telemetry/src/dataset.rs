//! Dataset profiles and generation — the stand-in for the paper's D1/D2
//! production datasets from NG-Tianhe.

use crate::anomaly::{labels_for_node, plan_events_in_spans, AnomalyEvent, InjectionConfig};
use crate::catalog::{CatalogSpec, MetricCatalog};
use crate::schedule::{Schedule, ScheduleConfig};
use crate::signals::SignalFrame;
use crate::simulator::simulate_cluster;
use ns_linalg::matrix::Matrix;

/// Everything needed to generate a dataset deterministically.
#[derive(Clone, Debug)]
pub struct DatasetProfile {
    pub name: String,
    pub spec: CatalogSpec,
    pub schedule: ScheduleConfig,
    /// Sampling interval in seconds (paper: 15 s; scaled profiles use 30 s).
    pub interval_s: f64,
    /// Fraction of the horizon used for training (paper: first 60%).
    pub train_frac: f64,
    /// Expected injected anomaly events per node in the test window.
    pub events_per_node: f64,
    /// Anomaly event duration range in steps.
    pub event_duration: (usize, usize),
    /// Probability that any raw sample is lost in collection (cleaned by
    /// the preprocessing interpolation step).
    pub missing_rate: f64,
    pub seed: u64,
}

impl DatasetProfile {
    /// Scaled-down D1: one array, many nodes, wide metric catalog.
    pub fn d1_prime() -> Self {
        Self {
            name: "D1'".into(),
            spec: CatalogSpec::scaled(),
            schedule: ScheduleConfig {
                n_nodes: 16,
                horizon: 2880, // 1 simulated day at 30 s
                mean_interarrival: 6.0,
                min_duration: 40,
                max_duration: 900,
                max_width: 8,
                seed: 101,
            },
            interval_s: 30.0,
            train_frac: 0.6,
            events_per_node: 2.0,
            event_duration: (15, 60),
            missing_rate: 0.001,
            seed: 101,
        }
    }

    /// Scaled-down D2: few nodes, narrower catalog, longer window.
    pub fn d2_prime() -> Self {
        Self {
            name: "D2'".into(),
            spec: CatalogSpec::small(),
            schedule: ScheduleConfig {
                n_nodes: 8,
                horizon: 2880, // 1 simulated day at 30 s
                mean_interarrival: 10.0,
                min_duration: 40,
                max_duration: 700,
                max_width: 4,
                seed: 202,
            },
            interval_s: 30.0,
            train_frac: 0.6,
            events_per_node: 2.5,
            event_duration: (15, 80),
            missing_rate: 0.001,
            seed: 202,
        }
    }

    /// Tiny profile for unit/integration tests.
    pub fn tiny() -> Self {
        Self {
            name: "tiny".into(),
            spec: CatalogSpec::small(),
            schedule: ScheduleConfig {
                n_nodes: 4,
                horizon: 600,
                mean_interarrival: 6.0,
                min_duration: 30,
                max_duration: 150,
                max_width: 2,
                seed: 7,
            },
            interval_s: 30.0,
            train_frac: 0.6,
            events_per_node: 1.5,
            event_duration: (10, 30),
            missing_rate: 0.002,
            seed: 7,
        }
    }

    /// Generate the dataset.
    pub fn generate(&self) -> Dataset {
        let schedule = Schedule::generate(&self.schedule);
        let split = (self.schedule.horizon as f64 * self.train_frac) as usize;
        let injection = InjectionConfig {
            window_start: split,
            window_end: self.schedule.horizon,
            events_per_node: self.events_per_node,
            min_duration: self.event_duration.0,
            max_duration: self.event_duration.1,
            seed: self.seed ^ 0xEE,
        };
        // Events land inside job spans of the test window: the paper's
        // performance anomalies manifest against running workloads.
        let spans_per_node: Vec<Vec<(usize, usize)>> = (0..self.schedule.n_nodes)
            .map(|n| {
                schedule
                    .node_timeline(n)
                    .iter()
                    .filter(|seg| seg.job.is_some())
                    .map(|seg| (seg.start.max(split), seg.end))
                    .filter(|&(s, e)| e > s)
                    .collect()
            })
            .collect();
        let events = plan_events_in_spans(&spans_per_node, &injection);
        let latent = simulate_cluster(&schedule, &events, self.interval_s, self.seed);
        let catalog = MetricCatalog::build(self.spec);
        Dataset {
            profile: self.clone(),
            catalog,
            schedule,
            latent,
            events,
            split,
        }
    }
}

/// Summary statistics (Table 2 row).
#[derive(Clone, Debug)]
pub struct DatasetStats {
    pub name: String,
    pub nodes: usize,
    pub jobs: usize,
    pub metrics: usize,
    pub total_points: usize,
    pub anomaly_ratio: f64,
}

/// A generated dataset: latent state for every node plus the machinery to
/// expand raw metrics on demand (the full raw tensor is never held for
/// all nodes at once).
pub struct Dataset {
    pub profile: DatasetProfile,
    pub catalog: MetricCatalog,
    pub schedule: Schedule,
    /// Post-injection latent timelines, indexed `[node][step]`.
    pub latent: Vec<Vec<SignalFrame>>,
    pub events: Vec<AnomalyEvent>,
    /// First step of the test split.
    pub split: usize,
}

impl Dataset {
    pub fn n_nodes(&self) -> usize {
        self.schedule.n_nodes
    }

    pub fn horizon(&self) -> usize {
        self.schedule.horizon
    }

    /// Training step range `[0, split)`.
    pub fn train_range(&self) -> std::ops::Range<usize> {
        0..self.split
    }

    /// Test step range `[split, horizon)`.
    pub fn test_range(&self) -> std::ops::Range<usize> {
        self.split..self.horizon()
    }

    /// Raw `T × M` metric matrix for a node, with collection losses
    /// punched in as NaN at `missing_rate` (cleaned by preprocessing).
    pub fn raw_node(&self, node: usize) -> Matrix {
        self.raw_rows(node, 0, self.horizon())
    }

    /// Rows `[start, end)` of [`raw_node`](Self::raw_node), bit-identical
    /// to the corresponding slice of the full matrix. The NaN punch is a
    /// pure per-cell hash of the *global* step index, so chunked
    /// generation reproduces the exact collection losses. This is what
    /// lets the streaming replay drive thousand-node deployments without
    /// ever holding a full raw matrix per node.
    pub fn raw_rows(&self, node: usize, start: usize, end: usize) -> Matrix {
        let mut m = self.catalog.expand_range(
            &self.latent[node],
            self.profile.seed ^ ((node as u64) << 16),
            start,
            end,
        );
        if self.profile.missing_rate > 0.0 {
            let threshold = (self.profile.missing_rate * u32::MAX as f64) as u32;
            let cols = m.cols();
            for t in 0..m.rows() {
                for j in 0..cols {
                    let h = splitmix(
                        self.profile.seed
                            ^ 0xBAD
                            ^ ((node as u64) << 48)
                            ^ (((start + t) as u64) << 20)
                            ^ j as u64,
                    );
                    if (h as u32) < threshold {
                        m[(t, j)] = f64::NAN;
                    }
                }
            }
        }
        m
    }

    /// Ground-truth point labels for a node over the full horizon.
    pub fn labels(&self, node: usize) -> Vec<bool> {
        labels_for_node(&self.events, node, self.horizon())
    }

    /// If an anomaly event overlaps a running job, the job is considered
    /// to fail at the earlier of job end and event end (case-study §5.2).
    pub fn failure_step(&self, event: &AnomalyEvent) -> Option<usize> {
        self.schedule
            .jobs
            .iter()
            .filter(|j| j.nodes.contains(&event.node))
            .find(|j| j.start < event.end && event.start < j.end)
            .map(|j| j.end.min(event.end))
    }

    /// Table 2 statistics.
    pub fn stats(&self) -> DatasetStats {
        let total_points = self.n_nodes() * self.horizon() * self.catalog.len();
        let test_points: usize = self.n_nodes() * (self.horizon() - self.split);
        let anomalous: usize = (0..self.n_nodes())
            .map(|n| self.labels(n)[self.split..].iter().filter(|&&b| b).count())
            .sum();
        DatasetStats {
            name: self.profile.name.clone(),
            nodes: self.n_nodes(),
            jobs: self.schedule.jobs.len(),
            metrics: self.catalog.len(),
            total_points,
            anomaly_ratio: anomalous as f64 / test_points.max(1) as f64,
        }
    }
}

#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_generates_consistently() {
        let ds = DatasetProfile::tiny().generate();
        assert_eq!(ds.n_nodes(), 4);
        assert_eq!(ds.latent.len(), 4);
        assert_eq!(ds.latent[0].len(), ds.horizon());
        assert!(ds.split > 0 && ds.split < ds.horizon());
        // Deterministic regeneration.
        let ds2 = DatasetProfile::tiny().generate();
        assert_eq!(ds.latent, ds2.latent);
        assert_eq!(ds.events, ds2.events);
    }

    #[test]
    fn anomalies_only_in_test_window() {
        let ds = DatasetProfile::tiny().generate();
        for e in &ds.events {
            assert!(
                e.start >= ds.split,
                "event {e:?} starts in the training split"
            );
        }
        for n in 0..ds.n_nodes() {
            let labels = ds.labels(n);
            assert!(labels[..ds.split].iter().all(|&b| !b));
        }
    }

    #[test]
    fn raw_rows_match_full_matrix_slices_bit_for_bit() {
        let ds = DatasetProfile::tiny().generate();
        let h = ds.horizon();
        let full = ds.raw_node(1);
        for (start, end) in [(0, h), (0, 64), (64, 200), (h - 1, h), (300, 300)] {
            let part = ds.raw_rows(1, start, end);
            assert_eq!(part.shape(), (end - start, full.cols()));
            for t in start..end {
                for j in 0..full.cols() {
                    assert_eq!(
                        part[(t - start, j)].to_bits(),
                        full[(t, j)].to_bits(),
                        "cell ({t},{j}) of range {start}..{end} (NaN punch included)"
                    );
                }
            }
        }
    }

    #[test]
    fn raw_node_has_missing_values_at_low_rate() {
        let ds = DatasetProfile::tiny().generate();
        let raw = ds.raw_node(0);
        let nan_count = raw.as_slice().iter().filter(|v| v.is_nan()).count();
        let rate = nan_count as f64 / raw.len() as f64;
        assert!(nan_count > 0, "missing-value corruption should occur");
        assert!(rate < 0.01, "rate {rate} too high");
    }

    #[test]
    fn stats_reflect_generation() {
        let ds = DatasetProfile::tiny().generate();
        let st = ds.stats();
        assert_eq!(st.nodes, 4);
        assert_eq!(st.jobs, ds.schedule.jobs.len());
        assert_eq!(st.metrics, ds.catalog.len());
        assert!(st.anomaly_ratio > 0.0 && st.anomaly_ratio < 0.5);
        assert_eq!(st.total_points, 4 * ds.horizon() * ds.catalog.len());
    }

    #[test]
    fn failure_step_found_for_overlapping_job() {
        let ds = DatasetProfile::tiny().generate();
        // At least one event should overlap a job in a busy tiny cluster.
        let overlapping = ds.events.iter().find(|e| ds.failure_step(e).is_some());
        if let Some(e) = overlapping {
            let f = ds.failure_step(e).unwrap();
            assert!(f >= e.start);
        }
    }
}
