//! Anomaly injection — the ChaosBlade substitute.
//!
//! Every anomaly class of the paper's Table 1 has an injector that
//! perturbs a node's latent signals over a labelled interval. Injection
//! happens on the latent state *before* raw-metric expansion, so the
//! perturbation propagates to every correlated raw metric exactly as a
//! real fault would.

use crate::archetype::JobArchetype;
use crate::signals::{clamp_frame, Signal, SignalFrame};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Anomaly classes (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnomalyKind {
    // CPU level
    CpuOverload,
    CacheFailure,
    // Memory level
    MemoryExhaustion,
    MemoryLeak,
    // Disk level
    DiskFull,
    SilentDataCorruption,
    // Network level
    NetworkCongestion,
    NetworkPartition,
    // Kernel / OS level
    ResourceContention,
    PageAllocationError,
}

/// All injectable anomaly kinds.
pub const ALL_ANOMALIES: [AnomalyKind; 10] = [
    AnomalyKind::CpuOverload,
    AnomalyKind::CacheFailure,
    AnomalyKind::MemoryExhaustion,
    AnomalyKind::MemoryLeak,
    AnomalyKind::DiskFull,
    AnomalyKind::SilentDataCorruption,
    AnomalyKind::NetworkCongestion,
    AnomalyKind::NetworkPartition,
    AnomalyKind::ResourceContention,
    AnomalyKind::PageAllocationError,
];

impl AnomalyKind {
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::CpuOverload => "cpu_overload",
            AnomalyKind::CacheFailure => "cache_failure",
            AnomalyKind::MemoryExhaustion => "memory_exhaustion",
            AnomalyKind::MemoryLeak => "memory_leak",
            AnomalyKind::DiskFull => "disk_full",
            AnomalyKind::SilentDataCorruption => "silent_data_corruption",
            AnomalyKind::NetworkCongestion => "network_congestion",
            AnomalyKind::NetworkPartition => "network_partition",
            AnomalyKind::ResourceContention => "resource_contention",
            AnomalyKind::PageAllocationError => "page_allocation_error",
        }
    }

    /// Table 1 level this anomaly belongs to.
    pub fn level(self) -> &'static str {
        match self {
            AnomalyKind::CpuOverload | AnomalyKind::CacheFailure => "CPU",
            AnomalyKind::MemoryExhaustion | AnomalyKind::MemoryLeak => "Memory",
            AnomalyKind::DiskFull | AnomalyKind::SilentDataCorruption => "Disk",
            AnomalyKind::NetworkCongestion | AnomalyKind::NetworkPartition => "Network",
            AnomalyKind::ResourceContention | AnomalyKind::PageAllocationError => "Kernel/OS",
        }
    }

    /// Perturb the latent frames of one node over the event window.
    /// `frames` spans exactly the injection interval.
    ///
    /// Injections are deliberately **contextual** ("performance
    /// anomalies... not necessarily failures", §4.1.1): most kinds
    /// *replace* the node's behaviour with statistically valid frames of
    /// the *wrong* workload — each anomalous frame lies on the global
    /// normal manifold, so pointwise detectors (GMM/AE over instantaneous
    /// vectors) see nothing, and only a method that knows which pattern
    /// the node *should* be running can flag the stretch. The remaining
    /// kinds are subtle in-envelope perturbations (leaks, sporadic retry
    /// storms).
    pub fn inject(self, frames: &mut [SignalFrame], rng: &mut ChaCha8Rng) {
        let n = frames.len();
        if n == 0 {
            return;
        }
        // Replace a frame with another archetype's frame at relative
        // position `rel`, preserving the monotone uptime signal.
        let replace = |f: &mut SignalFrame,
                       arch: JobArchetype,
                       rel: f64,
                       inten: f64,
                       rng: &mut ChaCha8Rng| {
            let uptime = f[Signal::Uptime as usize];
            *f = arch.frame(rel, inten, 0, 30.0, rng);
            f[Signal::Uptime as usize] = uptime;
        };
        let set_add = |f: &mut SignalFrame, s: Signal, v: f64| f[s as usize] += v;
        // Per-event intensity drawn from the same distribution normal jobs
        // use, so the replaced behaviour carries no intensity signature.
        let inten: f64 = rng.gen_range(0.75..1.05);
        for (t, f) in frames.iter_mut().enumerate() {
            let prog = t as f64 / n.max(1) as f64; // 0..1 through the event
            match self {
                AnomalyKind::CpuOverload => {
                    // A rogue compute process: the node behaves exactly
                    // like a ComputeBound compute phase.
                    replace(f, JobArchetype::ComputeBound, 0.1, inten, rng);
                }
                AnomalyKind::CacheFailure => {
                    // Thrashing looks like an analytics shuffle: high
                    // system time + switches, little useful work.
                    replace(f, JobArchetype::DataAnalytics, 0.6, inten, rng);
                }
                AnomalyKind::MemoryExhaustion => {
                    // The node drifts into memory-workload behaviour:
                    // allocation ramp, then sustained high residency.
                    let rel = 0.05 + 0.6 * prog;
                    replace(f, JobArchetype::MemoryIntensive, rel, inten, rng);
                }
                AnomalyKind::MemoryLeak => {
                    // Subtle in-envelope creep (no replacement).
                    set_add(f, Signal::MemUsed, 0.3 * prog);
                    set_add(f, Signal::MemKernel, 0.12 * prog);
                }
                AnomalyKind::DiskFull => {
                    // Scratch filling up: IoHeavy write-phase behaviour
                    // regardless of what should run.
                    replace(f, JobArchetype::IoHeavy, 0.15, inten, rng);
                    f[Signal::DiskUsedFrac as usize] =
                        f[Signal::DiskUsedFrac as usize].max(0.55 + 0.15 * prog);
                }
                AnomalyKind::SilentDataCorruption => {
                    // Sporadic re-read retry storms: brief IoHeavy
                    // read-phase frames inside the running job.
                    if (t * 7) % 13 < 5 {
                        replace(f, JobArchetype::IoHeavy, 0.05, inten, rng);
                    }
                }
                AnomalyKind::NetworkCongestion => {
                    // Congested exchange: NetworkHeavy at degraded
                    // throughput with elevated (but in-envelope) retrans.
                    replace(f, JobArchetype::NetworkHeavy, 0.5, 0.72 * inten, rng);
                    // Retrans stays inside the lossy-exchange envelope
                    // (0.18·i for i ≤ 1.1): congested but plausible.
                    f[Signal::NetRetrans as usize] = 0.18 * inten;
                    set_add(f, Signal::ProcsBlocked, 0.08);
                }
                AnomalyKind::NetworkPartition => {
                    // Traffic gone: the node looks idle mid-job.
                    replace(f, JobArchetype::Idle, 0.5, 1.0, rng);
                }
                AnomalyKind::ResourceContention => {
                    // Noisy neighbour: behaviour oscillates between a
                    // compute beat and a shuffle beat.
                    if (t / 3) % 2 == 0 {
                        replace(f, JobArchetype::ComputeBound, 0.1, 0.9 * inten, rng);
                    } else {
                        replace(f, JobArchetype::DataAnalytics, 0.6, 0.95 * inten, rng);
                    }
                }
                AnomalyKind::PageAllocationError => {
                    // Sporadic allocation-ramp behaviour with kernel
                    // memory pressure.
                    if (t * 5) % 11 < 4 {
                        replace(f, JobArchetype::MemoryIntensive, 0.1, inten, rng);
                    }
                }
            }
            clamp_frame(f);
        }
    }
}

/// A labelled injected anomaly.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalyEvent {
    pub node: usize,
    pub kind: AnomalyKind,
    /// Inclusive start step.
    pub start: usize,
    /// Exclusive end step.
    pub end: usize,
}

/// Injection plan configuration.
#[derive(Clone, Debug)]
pub struct InjectionConfig {
    /// Steps of the window in which anomalies may occur (typically the
    /// test split).
    pub window_start: usize,
    pub window_end: usize,
    /// Expected number of events per node over the window.
    pub events_per_node: f64,
    /// Event duration range in steps.
    pub min_duration: usize,
    pub max_duration: usize,
    pub seed: u64,
}

/// Sample a non-overlapping per-node injection plan where each event
/// lands inside one of the node's allowed spans (typically job spans in
/// the test window: performance anomalies manifest against a running
/// workload). A node with no allowed spans receives no events.
pub fn plan_events_in_spans(
    spans_per_node: &[Vec<(usize, usize)>],
    cfg: &InjectionConfig,
) -> Vec<AnomalyEvent> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut events = Vec::new();
    for (node, spans) in spans_per_node.iter().enumerate() {
        let usable: Vec<(usize, usize)> = spans
            .iter()
            .copied()
            .filter(|&(s, e)| {
                e > s && e - s > cfg.min_duration && s >= cfg.window_start && e <= cfg.window_end
            })
            .collect();
        if usable.is_empty() {
            continue;
        }
        let count = poisson_like(&mut rng, cfg.events_per_node);
        let mut taken: Vec<(usize, usize)> = Vec::new();
        for _ in 0..count {
            for _attempt in 0..12 {
                let &(lo, hi) = &usable[rng.gen_range(0..usable.len())];
                let max_dur = cfg.max_duration.min(hi - lo - 1).max(cfg.min_duration);
                let dur = rng.gen_range(cfg.min_duration..=max_dur);
                if dur >= hi - lo {
                    continue;
                }
                let start = lo + rng.gen_range(0..hi - lo - dur);
                let end = start + dur;
                if taken.iter().all(|&(s, e)| end <= s || start >= e) {
                    taken.push((start, end));
                    let kind = ALL_ANOMALIES[rng.gen_range(0..ALL_ANOMALIES.len())];
                    events.push(AnomalyEvent {
                        node,
                        kind,
                        start,
                        end,
                    });
                    break;
                }
            }
        }
    }
    events.sort_by_key(|e| (e.node, e.start));
    events
}

fn poisson_like(rng: &mut ChaCha8Rng, lambda: f64) -> usize {
    let mut c = 0usize;
    let mut acc = 1.0f64;
    let limit = (-lambda).exp();
    loop {
        acc *= rng.gen_range(0.0..1.0f64);
        if acc <= limit {
            break;
        }
        c += 1;
        if c > 20 {
            break;
        }
    }
    c
}

/// Sample a non-overlapping per-node injection plan.
pub fn plan_events(n_nodes: usize, cfg: &InjectionConfig) -> Vec<AnomalyEvent> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut events = Vec::new();
    let span = cfg.window_end.saturating_sub(cfg.window_start);
    if span == 0 {
        return events;
    }
    for node in 0..n_nodes {
        // Poisson-ish count.
        let lambda = cfg.events_per_node;
        let count = {
            let mut c = 0usize;
            let mut acc = 1.0f64;
            let limit = (-lambda).exp();
            loop {
                acc *= rng.gen_range(0.0..1.0f64);
                if acc <= limit {
                    break;
                }
                c += 1;
                if c > 20 {
                    break;
                }
            }
            c
        };
        let mut taken: Vec<(usize, usize)> = Vec::new();
        for _ in 0..count {
            let dur = rng.gen_range(cfg.min_duration..=cfg.max_duration.max(cfg.min_duration));
            if dur >= span {
                continue;
            }
            for _attempt in 0..8 {
                let start = cfg.window_start + rng.gen_range(0..span - dur);
                let end = start + dur;
                if taken.iter().all(|&(s, e)| end <= s || start >= e) {
                    taken.push((start, end));
                    let kind = ALL_ANOMALIES[rng.gen_range(0..ALL_ANOMALIES.len())];
                    events.push(AnomalyEvent {
                        node,
                        kind,
                        start,
                        end,
                    });
                    break;
                }
            }
        }
    }
    events.sort_by_key(|e| (e.node, e.start));
    events
}

/// Point-wise ground-truth labels for one node over `[0, horizon)`.
pub fn labels_for_node(events: &[AnomalyEvent], node: usize, horizon: usize) -> Vec<bool> {
    let mut labels = vec![false; horizon];
    for e in events.iter().filter(|e| e.node == node) {
        for slot in labels[e.start.min(horizon)..e.end.min(horizon)].iter_mut() {
            *slot = true;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::idle_frame;
    use rand::SeedableRng;

    fn busy_frames(n: usize) -> Vec<SignalFrame> {
        (0..n)
            .map(|t| {
                let mut f = idle_frame(t, 30.0);
                f[Signal::CpuUser as usize] = 0.6;
                f[Signal::NetRxBytes as usize] = 0.5;
                f[Signal::NetTxBytes as usize] = 0.5;
                f[Signal::DiskWriteBytes as usize] = 0.4;
                f[Signal::MemUsed as usize] = 0.4;
                f
            })
            .collect()
    }

    #[test]
    fn every_kind_changes_the_signals() {
        for kind in ALL_ANOMALIES {
            let clean = busy_frames(40);
            let mut dirty = clean.clone();
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            kind.inject(&mut dirty, &mut rng);
            let delta: f64 = clean
                .iter()
                .zip(&dirty)
                .map(|(a, b)| {
                    a.iter()
                        .zip(b.iter())
                        .map(|(x, y)| (x - y).abs())
                        .sum::<f64>()
                })
                .sum();
            assert!(delta > 0.5, "{kind:?} produced no visible perturbation");
            for f in &dirty {
                assert!(f.iter().all(|v| v.is_finite() && *v >= 0.0));
            }
        }
    }

    #[test]
    fn memory_exhaustion_ramps_memory_and_swap() {
        let mut frames = busy_frames(60);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        AnomalyKind::MemoryExhaustion.inject(&mut frames, &mut rng);
        assert!(frames[59][Signal::MemUsed as usize] > frames[0][Signal::MemUsed as usize]);
        assert!(frames[59][Signal::SwapUsed as usize] > 0.1);
    }

    #[test]
    fn network_partition_kills_traffic() {
        let mut frames = busy_frames(30);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        AnomalyKind::NetworkPartition.inject(&mut frames, &mut rng);
        let mid = &frames[15];
        assert!(mid[Signal::NetRxBytes as usize] < 0.1);
        assert!(mid[Signal::NetTxBytes as usize] < 0.1);
    }

    #[test]
    fn plan_is_non_overlapping_within_node_and_inside_window() {
        let cfg = InjectionConfig {
            window_start: 100,
            window_end: 1000,
            events_per_node: 3.0,
            min_duration: 10,
            max_duration: 60,
            seed: 9,
        };
        let events = plan_events(20, &cfg);
        assert!(!events.is_empty());
        for e in &events {
            assert!(e.start >= 100 && e.end <= 1000);
            assert!(e.end > e.start);
        }
        for node in 0..20 {
            let mut spans: Vec<(usize, usize)> = events
                .iter()
                .filter(|e| e.node == node)
                .map(|e| (e.start, e.end))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "node {node} overlap");
            }
        }
    }

    #[test]
    fn labels_mark_exactly_the_event_spans() {
        let events = vec![
            AnomalyEvent {
                node: 0,
                kind: AnomalyKind::CpuOverload,
                start: 5,
                end: 8,
            },
            AnomalyEvent {
                node: 1,
                kind: AnomalyKind::DiskFull,
                start: 0,
                end: 2,
            },
        ];
        let l0 = labels_for_node(&events, 0, 10);
        assert_eq!(l0.iter().filter(|&&b| b).count(), 3);
        assert!(l0[5] && l0[7] && !l0[8] && !l0[4]);
        let l2 = labels_for_node(&events, 2, 10);
        assert!(l2.iter().all(|&b| !b));
    }

    #[test]
    fn plan_is_deterministic() {
        let cfg = InjectionConfig {
            window_start: 0,
            window_end: 500,
            events_per_node: 2.0,
            min_duration: 5,
            max_duration: 30,
            seed: 11,
        };
        assert_eq!(plan_events(10, &cfg), plan_events(10, &cfg));
    }

    #[test]
    fn replacement_anomalies_stay_on_the_global_manifold() {
        // Pattern-replacement injections must produce frames whose values
        // individually lie inside the envelope spanned by normal
        // archetype frames — that is what makes them contextual.
        use crate::archetype::{JobArchetype, SCHEDULABLE_ARCHETYPES};
        let mut lo = [f64::INFINITY; crate::signals::NUM_SIGNALS];
        let mut hi = [f64::NEG_INFINITY; crate::signals::NUM_SIGNALS];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for arch in SCHEDULABLE_ARCHETYPES
            .iter()
            .copied()
            .chain([JobArchetype::Idle])
        {
            for k in 0..400 {
                let rel = (k % 100) as f64 / 99.0;
                let inten = 0.7 + 0.4 * ((k / 100) as f64 / 3.0);
                let f = arch.frame(rel, inten, k, 30.0, &mut rng);
                for (i, v) in f.iter().enumerate() {
                    lo[i] = lo[i].min(*v);
                    hi[i] = hi[i].max(*v);
                }
            }
        }
        let margin = 0.12; // noise + clamp slack
        for kind in [
            AnomalyKind::CpuOverload,
            AnomalyKind::CacheFailure,
            AnomalyKind::MemoryExhaustion,
            AnomalyKind::NetworkCongestion,
            AnomalyKind::NetworkPartition,
            AnomalyKind::ResourceContention,
        ] {
            let mut frames = busy_frames(50);
            let mut krng = ChaCha8Rng::seed_from_u64(9);
            kind.inject(&mut frames, &mut krng);
            for f in &frames {
                for (i, v) in f.iter().enumerate() {
                    if i == Signal::Uptime as usize {
                        continue;
                    }
                    assert!(
                        *v >= lo[i] - margin && *v <= hi[i] + margin,
                        "{kind:?}: signal {i} value {v} outside normal envelope [{}, {}]",
                        lo[i],
                        hi[i]
                    );
                }
            }
        }
    }

    #[test]
    fn table1_levels_are_complete() {
        let levels: std::collections::BTreeSet<&str> =
            ALL_ANOMALIES.iter().map(|k| k.level()).collect();
        assert_eq!(levels.len(), 5);
        assert!(levels.contains("CPU") && levels.contains("Kernel/OS"));
    }
}
