//! A Slurm-like gang scheduler producing the job scheduling lists the
//! paper reads from `sacct` (§1, §3.2): per-job start/end timestamps and
//! execution node sets, with idle gaps exposed as pseudo-jobs.

use crate::archetype::{JobArchetype, SCHEDULABLE_ARCHETYPES};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One scheduled job (gang-scheduled across `nodes`). Times are in
/// sample-step units.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobRecord {
    pub job_id: usize,
    pub archetype: JobArchetype,
    /// Per-job intensity scale applied to the archetype's signal levels.
    pub intensity: f64,
    pub nodes: Vec<usize>,
    pub start: usize,
    pub end: usize,
}

impl JobRecord {
    pub fn duration(&self) -> usize {
        self.end - self.start
    }
}

/// One contiguous span in a node's timeline.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSegment {
    /// Index into [`Schedule::jobs`], or `None` for idle waiting.
    pub job: Option<usize>,
    pub start: usize,
    pub end: usize,
}

impl NodeSegment {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct ScheduleConfig {
    pub n_nodes: usize,
    /// Horizon in sample steps.
    pub horizon: usize,
    /// Mean inter-arrival between job submissions, in steps.
    pub mean_interarrival: f64,
    /// Job duration range in steps (log-uniform-ish sampling, §4.1: ~95%
    /// of segments shorter than a day).
    pub min_duration: usize,
    pub max_duration: usize,
    /// Maximum gang width (number of nodes per job).
    pub max_width: usize,
    pub seed: u64,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        Self {
            n_nodes: 16,
            horizon: 2880,
            mean_interarrival: 12.0,
            min_duration: 40,
            max_duration: 700,
            max_width: 8,
            seed: 1,
        }
    }
}

/// The full cluster schedule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Schedule {
    pub n_nodes: usize,
    pub horizon: usize,
    pub jobs: Vec<JobRecord>,
}

impl Schedule {
    /// FCFS gang scheduling of a synthetic submission stream.
    pub fn generate(cfg: &ScheduleConfig) -> Schedule {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut free_at = vec![0usize; cfg.n_nodes];
        let mut jobs = Vec::new();
        let mut arrival = 0.0f64;
        let mut job_id = 0usize;
        loop {
            arrival += sample_exp(&mut rng, cfg.mean_interarrival);
            let submit = arrival as usize;
            if submit >= cfg.horizon {
                break;
            }
            let width = sample_width(&mut rng, cfg.max_width.min(cfg.n_nodes));
            let duration = sample_duration(&mut rng, cfg.min_duration, cfg.max_duration);
            // FCFS: pick the `width` nodes that free up earliest.
            let mut order: Vec<usize> = (0..cfg.n_nodes).collect();
            order.sort_by_key(|&n| (free_at[n], n));
            let chosen: Vec<usize> = order[..width].to_vec();
            let start = chosen
                .iter()
                .map(|&n| free_at[n])
                .max()
                .unwrap()
                .max(submit);
            let end = (start + duration).min(cfg.horizon);
            if start >= cfg.horizon || end <= start {
                continue;
            }
            for &n in &chosen {
                free_at[n] = end;
            }
            let archetype = SCHEDULABLE_ARCHETYPES[rng.gen_range(0..SCHEDULABLE_ARCHETYPES.len())];
            let intensity = rng.gen_range(0.7..1.1);
            jobs.push(JobRecord {
                job_id,
                archetype,
                intensity,
                nodes: chosen,
                start,
                end,
            });
            job_id += 1;
        }
        Schedule {
            n_nodes: cfg.n_nodes,
            horizon: cfg.horizon,
            jobs,
        }
    }

    /// Per-node timeline: job segments in time order with idle gaps filled
    /// in as `job: None` segments. Covers exactly `[0, horizon)`.
    pub fn node_timeline(&self, node: usize) -> Vec<NodeSegment> {
        let mut spans: Vec<(usize, usize, usize)> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.nodes.contains(&node))
            .map(|(idx, j)| (j.start, j.end, idx))
            .collect();
        spans.sort_unstable();
        let mut out = Vec::with_capacity(spans.len() * 2 + 1);
        let mut cursor = 0usize;
        for (start, end, idx) in spans {
            if start > cursor {
                out.push(NodeSegment {
                    job: None,
                    start: cursor,
                    end: start,
                });
            }
            out.push(NodeSegment {
                job: Some(idx),
                start,
                end,
            });
            cursor = end.max(cursor);
        }
        if cursor < self.horizon {
            out.push(NodeSegment {
                job: None,
                start: cursor,
                end: self.horizon,
            });
        }
        out
    }

    /// The archetype active on `node` at `step` (Idle between jobs), plus
    /// the job index if any.
    pub fn job_at(&self, node: usize, step: usize) -> Option<usize> {
        self.jobs
            .iter()
            .position(|j| j.nodes.contains(&node) && j.start <= step && step < j.end)
    }

    /// `sacct`-style text export: one row per (job, node).
    pub fn sacct(&self) -> String {
        let mut s = String::from("JobID|Partition|NodeList|Start|End|State\n");
        for j in &self.jobs {
            for &n in &j.nodes {
                s.push_str(&format!(
                    "{}|{}|node{:04}|{}|{}|COMPLETED\n",
                    j.job_id,
                    j.archetype.name(),
                    n,
                    j.start,
                    j.end
                ));
            }
        }
        s
    }

    /// Job duration list (in steps) across all jobs — the Fig. 4 series.
    pub fn durations(&self) -> Vec<usize> {
        self.jobs.iter().map(|j| j.duration()).collect()
    }
}

fn sample_exp(rng: &mut ChaCha8Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -mean * u.ln()
}

fn sample_width(rng: &mut ChaCha8Rng, max_width: usize) -> usize {
    // Geometric-ish: most jobs are narrow, a few are wide gangs.
    let mut w = 1usize;
    while w < max_width && rng.gen_bool(0.45) {
        w *= 2;
    }
    w.min(max_width)
}

fn sample_duration(rng: &mut ChaCha8Rng, min_d: usize, max_d: usize) -> usize {
    // Log-uniform: reproduces the heavy skew of Fig. 4 (most jobs short).
    let lo = (min_d.max(1) as f64).ln();
    let hi = (max_d.max(min_d + 1) as f64).ln();
    let v = rng.gen_range(lo..hi);
    v.exp() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Schedule {
        Schedule::generate(&ScheduleConfig::default())
    }

    #[test]
    fn jobs_fit_in_horizon_and_are_nonempty() {
        let s = sched();
        assert!(!s.jobs.is_empty());
        for j in &s.jobs {
            assert!(j.start < j.end);
            assert!(j.end <= s.horizon);
            assert!(!j.nodes.is_empty());
        }
    }

    #[test]
    fn no_node_runs_two_jobs_at_once() {
        let s = sched();
        for node in 0..s.n_nodes {
            let mut spans: Vec<(usize, usize)> = s
                .jobs
                .iter()
                .filter(|j| j.nodes.contains(&node))
                .map(|j| (j.start, j.end))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap on node {node}: {w:?}");
            }
        }
    }

    #[test]
    fn timeline_partitions_the_horizon() {
        let s = sched();
        for node in 0..s.n_nodes {
            let tl = s.node_timeline(node);
            assert_eq!(tl.first().unwrap().start, 0);
            assert_eq!(tl.last().unwrap().end, s.horizon);
            for w in tl.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap/overlap in node {node} timeline");
            }
            assert!(tl.iter().all(|seg| !seg.is_empty()));
        }
    }

    #[test]
    fn timeline_has_idle_and_busy_segments() {
        let s = sched();
        let mut any_idle = false;
        let mut any_job = false;
        for node in 0..s.n_nodes {
            for seg in s.node_timeline(node) {
                match seg.job {
                    None => any_idle = true,
                    Some(_) => any_job = true,
                }
            }
        }
        assert!(any_idle && any_job);
    }

    #[test]
    fn job_at_agrees_with_timeline() {
        let s = sched();
        for node in 0..4 {
            for seg in s.node_timeline(node) {
                let mid = (seg.start + seg.end) / 2;
                assert_eq!(s.job_at(node, mid), seg.job);
            }
        }
    }

    #[test]
    fn gang_jobs_share_exact_times() {
        let s = sched();
        let wide = s.jobs.iter().find(|j| j.nodes.len() >= 2);
        // With default config wide jobs exist overwhelmingly often.
        let j = wide.expect("expected at least one gang job");
        for &n in &j.nodes {
            let tl = s.node_timeline(n);
            assert!(tl
                .iter()
                .any(|seg| seg.job.map(|i| s.jobs[i].job_id) == Some(j.job_id)
                    && seg.start == j.start
                    && seg.end == j.end));
        }
    }

    #[test]
    fn durations_are_heavily_skewed() {
        let cfg = ScheduleConfig {
            horizon: 20000,
            seed: 3,
            ..Default::default()
        };
        let s = Schedule::generate(&cfg);
        let mut d = s.durations();
        d.sort_unstable();
        let median = d[d.len() / 2] as f64;
        let p95 = d[d.len() * 95 / 100] as f64;
        assert!(p95 > 3.0 * median, "median {median}, p95 {p95}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Schedule::generate(&ScheduleConfig::default());
        let b = Schedule::generate(&ScheduleConfig::default());
        assert_eq!(a.jobs.len(), b.jobs.len());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.nodes, y.nodes);
            assert_eq!(x.archetype, y.archetype);
        }
    }

    #[test]
    fn sacct_export_has_row_per_job_node() {
        let s = sched();
        let text = s.sacct();
        let rows = text.lines().count() - 1;
        let expected: usize = s.jobs.iter().map(|j| j.nodes.len()).sum();
        assert_eq!(rows, expected);
        assert!(text.starts_with("JobID|"));
    }
}
