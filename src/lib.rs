//! # NodeSentry
//!
//! A Rust reproduction of *"Effective Node-Level Anomaly Detection in HPC
//! Systems via Coarse-Grained Clustering and Fine-Grained Model Sharing"*
//! (SC '25).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`telemetry`] — synthetic HPC cluster: metric catalog, Slurm-like job
//!   scheduler, job archetypes with sub-patterns, anomaly injection, dataset
//!   profiles.
//! * [`features`] — TSFEL-style statistical/temporal/spectral feature
//!   extraction (134-feature default catalog, own FFT).
//! * [`cluster`] — HAC, silhouette, k-means, Gaussian mixtures, DBSCAN, DTW,
//!   PCA.
//! * [`nn`] — from-scratch reverse-mode autodiff with Transformer, sparse
//!   Mixture-of-Experts, LSTM and VAE building blocks.
//! * [`core`] — the NodeSentry pipeline itself: preprocessing, coarse-grained
//!   clustering, fine-grained model sharing, online detection, incremental
//!   updates, ablation variants.
//! * [`baselines`] — Prodigy, RUAD, ExaMon and ISC'20 re-implementations.
//! * [`stream`] — sharded streaming deployment engine: per-node incremental
//!   state over a trained detector, bit-identical to batch scoring.
//! * [`eval`] — point-adjusted precision/recall/F1, ROC-AUC, k-sigma dynamic
//!   thresholding (batch + streaming), timing harness.
//! * [`label`] — the headless labeling / cluster-adjustment toolkit
//!   (artifact A2).
//! * [`obs`] — zero-dependency observability: tracing spans over the
//!   training stages, live metrics from the streaming engine, a bounded
//!   structured event journal with flight-recorder incident capture,
//!   and an HTTP exporter serving `/metrics` plus the operational
//!   routes (`/healthz`, `/readyz`, `/statusz`, `/debug/events`,
//!   `/debug/incidents`).
//! * [`wire`] — length-prefixed, versioned, checksummed binary tick/verdict
//!   protocol for feeding the engine over a socket.
//! * [`linalg`] — the dense matrix substrate underneath everything.
//!
//! See `examples/quickstart.rs` for an end-to-end tour and
//! `examples/stream_monitor.rs` for the streaming deployment loop.

pub use nodesentry_core as core;
pub use ns_baselines as baselines;
pub use ns_cluster as cluster;
pub use ns_eval as eval;
pub use ns_features as features;
pub use ns_label as label;
pub use ns_linalg as linalg;
pub use ns_nn as nn;
pub use ns_obs as obs;
pub use ns_stream as stream;
pub use ns_telemetry as telemetry;
pub use ns_wire as wire;

/// Workspace version, for examples that print provenance headers.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
