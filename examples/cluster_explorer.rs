//! Cluster exploration + operator adjustment (the artifact-A2 workflow,
//! headless): extract features from job segments, cluster them, inspect
//! the silhouette, move a segment between clusters like an operator
//! would in the GUI, and persist the adjusted assignment.
//!
//! ```sh
//! cargo run --release --example cluster_explorer
//! ```

use nodesentry::cluster::{linkage, Linkage};
use nodesentry::features::FeatureCatalog;
use nodesentry::label::ClusterAdjustment;
use nodesentry::telemetry::DatasetProfile;

fn main() {
    let dataset = DatasetProfile::tiny().generate();
    let catalog = FeatureCatalog::compact();

    // Collect per-segment feature vectors from every node's training
    // window (latent signals stand in for preprocessed metrics here).
    let mut features: Vec<Vec<f64>> = Vec::new();
    let mut descriptions: Vec<String> = Vec::new();
    for node in 0..dataset.n_nodes() {
        for seg in dataset.schedule.node_timeline(node) {
            if seg.end > dataset.split || seg.len() < 20 {
                continue;
            }
            let m = nodesentry::linalg::Matrix::from_fn(seg.len(), 6, |r, c| {
                dataset.latent[node][seg.start + r][c]
            });
            features.push(catalog.extract_mts(&m, 1.0 / 30.0));
            let label = match seg.job {
                Some(j) => format!("{:?}", dataset.schedule.jobs[j].archetype),
                None => "Idle".into(),
            };
            descriptions.push(format!("node{node} {}..{} {label}", seg.start, seg.end));
        }
    }
    println!("collected {} segments", features.len());

    // Standardize features and cluster with HAC (Ward).
    let dim = features[0].len();
    for j in 0..dim {
        let col: Vec<f64> = features.iter().map(|f| f[j]).collect();
        let m = nodesentry::linalg::stats::mean(&col);
        let s = nodesentry::linalg::stats::std_dev(&col).max(1e-9);
        for f in features.iter_mut() {
            f[j] = (f[j] - m) / s;
        }
    }
    let dendrogram = linkage(&features, Linkage::Ward);
    let labels = dendrogram.cut_k(5.min(features.len()));

    // Hand the result to the adjustment tool.
    let mut adjust = ClusterAdjustment::new(features, labels);
    println!(
        "automatic clustering: k = {}, silhouette = {:.3}",
        adjust.k(),
        adjust.silhouette()
    );
    for c in 0..adjust.k() {
        let members: Vec<&String> = adjust
            .labels()
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == c)
            .map(|(i, _)| &descriptions[i])
            .collect();
        println!(
            "  cluster {c} ({} members): {}",
            members.len(),
            members.first().map(|s| s.as_str()).unwrap_or("-")
        );
    }

    // Operator move: reassign segment 0 into a fresh cluster, watch the
    // silhouette diagnostic, then undo by restoring the original label.
    let original = adjust.labels()[0];
    adjust.reassign(0, adjust.k());
    println!(
        "after moving segment 0 to a new cluster: k = {}, silhouette = {:.3}, overrides = {:?}",
        adjust.k(),
        adjust.silhouette(),
        adjust.overrides()
    );
    adjust.reassign(0, original);
    println!("restored: overrides = {:?}", adjust.overrides());

    // Persist in the tool's exchange format and read it back.
    let exported = adjust.export(false);
    let parsed = ClusterAdjustment::parse_labels(&exported).expect("roundtrip");
    assert_eq!(&parsed, adjust.labels());
    println!(
        "assignment export/import roundtrip OK ({} rows)",
        parsed.len()
    );
}
