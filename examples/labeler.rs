//! Headless anomaly-labeling session (the artifact-A2 labeling tool
//! without the Tkinter front end): run the built-in suggestion detectors
//! over a node's telemetry, accept high-confidence suggestions, edit one
//! by hand, undo a mistake, and persist the labels as per-node CSV.
//!
//! ```sh
//! cargo run --release --example labeler
//! ```

use nodesentry::eval::threshold::KSigmaConfig;
use nodesentry::label::{
    suggest_ksigma, suggest_level_shift, Action, AnnotationHistory, Interval, LabelStore,
};
use nodesentry::telemetry::{DatasetProfile, Signal};

fn main() {
    let dataset = DatasetProfile::tiny().generate();
    let node = 0usize;
    // A labeling view: a handful of interesting signals over the test
    // window (the GUI shows these as selectable curves).
    let signals = [
        Signal::CpuUser,
        Signal::MemUsed,
        Signal::NetRxBytes,
        Signal::PageFaults,
    ];
    let view = nodesentry::linalg::Matrix::from_fn(
        dataset.horizon() - dataset.split,
        signals.len(),
        |r, c| dataset.latent[node][dataset.split + r][signals[c] as usize],
    );
    println!(
        "labeling node {node}: {} steps × {} metrics (test window)",
        view.rows(),
        view.cols()
    );

    // 1. Assisted labeling: built-in detectors propose intervals.
    let mut suggestions = suggest_ksigma(&view, &KSigmaConfig::default(), 2, 3);
    suggestions.extend(suggest_level_shift(&view, 20, 6.0));
    suggestions.sort_by(|a, b| b.confidence.partial_cmp(&a.confidence).unwrap());
    println!("{} suggestions from built-in detectors:", suggestions.len());
    for s in suggestions.iter().take(8) {
        println!(
            "  [{}..{}] {} (confidence {:.2})",
            s.interval.start, s.interval.end, s.source, s.confidence
        );
    }

    // 2. The operator accepts confident suggestions, adds one manual
    //    label, every action goes through the undoable history.
    let mut store = LabelStore::new();
    let mut history = AnnotationHistory::new();
    for s in suggestions.iter().filter(|s| s.confidence >= 0.4) {
        history.apply(
            &mut store,
            Action::Label {
                node,
                interval: s.interval.clone(),
            },
        );
    }
    history.apply(
        &mut store,
        Action::Label {
            node,
            interval: Interval::new(5, 9, "operator: warm-up artefact"),
        },
    );
    println!(
        "after triage: {} labelled intervals",
        store.intervals(node).len()
    );

    // Oops — the manual label was wrong; undo restores the prior state.
    store = history.undo().expect("something to undo");
    println!(
        "after undo:   {} labelled intervals",
        store.intervals(node).len()
    );

    // 3. Persist: per-node CSV plus the JSONL action log.
    let csv = store.to_csv(node);
    let log = history.to_jsonl();
    println!(
        "--- labels/node{node:03}.csv ---\n{}",
        csv.lines().take(6).collect::<Vec<_>>().join("\n")
    );
    println!(
        "--- annotation_history.jsonl: {} actions ---",
        log.lines().count()
    );

    // Compare against ground truth so the demo is verifiable.
    let truth = dataset.labels(node);
    let marked = store.point_labels(node, view.rows());
    let overlap = marked
        .iter()
        .enumerate()
        .filter(|(i, &m)| m && truth[dataset.split + i])
        .count();
    let total_truth = truth[dataset.split..].iter().filter(|&&b| b).count();
    println!("ground-truth anomalous points covered by labels: {overlap}/{total_truth}");
}
