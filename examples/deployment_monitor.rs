//! Deployment-style monitoring loop (paper §5.1): NodeSentry watches a
//! small production-like cluster in hourly cycles, matching each new job
//! against its pattern library, scoring points in real time, raising
//! alerts, and adapting incrementally when an unseen pattern appears.
//!
//! ```sh
//! cargo run --release --example deployment_monitor
//! ```

use nodesentry::core::{NodeSentry, NodeSentryConfig};
use nodesentry::eval::threshold::{ksigma_detect, smooth_scores};
use nodesentry::eval::timing::{format_duration, Stopwatch};
use nodesentry::telemetry::DatasetProfile;

fn main() {
    let mut profile = DatasetProfile::tiny();
    profile.name = "deployment-demo".into();
    profile.schedule.horizon = 900;
    profile.events_per_node = 2.0;
    let dataset = profile.generate();
    let steps_per_cycle = 60; // one "monitoring cycle" of the demo

    // Offline training on the historical window.
    let cfg = NodeSentryConfig::default();
    let groups = dataset.catalog.group_ids();
    let inputs: Vec<nodesentry::core::NodeInput> = (0..dataset.n_nodes())
        .map(|n| nodesentry::core::NodeInput {
            raw: dataset.raw_node(n),
            transitions: dataset
                .schedule
                .node_timeline(n)
                .iter()
                .map(|s| s.start)
                .filter(|&s| s > 0)
                .collect(),
        })
        .collect();
    let sw = Stopwatch::start();
    let mut model = NodeSentry::fit(cfg, &inputs, &groups, dataset.split);
    println!(
        "offline training done in {} — {} clusters in the pattern library",
        format_duration(sw.seconds()),
        model.n_clusters()
    );

    // Online loop: score each node cycle by cycle; alert on threshold
    // crossings; verify against ground truth at the end.
    let mut alerts = 0usize;
    let mut true_alerts = 0usize;
    for (n, input) in inputs.iter().enumerate() {
        let sw = Stopwatch::start();
        let (scores, matches) = model.score_node(&input.raw, &input.transitions, dataset.split);
        let per_point_ms = sw.seconds() * 1e3 / scores.len().max(1) as f64;
        let smoothed = smooth_scores(&scores, model.cfg.smooth_window);
        let flags = ksigma_detect(&smoothed, &model.cfg.threshold);
        let truth = dataset.labels(n);
        for (cycle_start, chunk) in flags.chunks(steps_per_cycle).enumerate() {
            if let Some(offset) = chunk.iter().position(|&f| f) {
                let step = dataset.split + cycle_start * steps_per_cycle + offset;
                alerts += 1;
                if truth[step.min(truth.len() - 1)] {
                    true_alerts += 1;
                }
                println!(
                    "  ALERT node {n} cycle {cycle_start}: anomaly signature at step {step} \
                     ({} matched segments, {per_point_ms:.2} ms/point)",
                    matches.len()
                );
            }
        }
    }
    println!("alerts raised: {alerts} ({true_alerts} inside labelled anomaly intervals)");

    // Incremental adaptation: a brand-new workload pattern arrives.
    let alien = nodesentry::linalg::Matrix::from_fn(80, model.preprocessor.out_dim(), |t, m| {
        ((t as f64) * 2.2 + m as f64).sin() * 4.0
    });
    let before = model.n_clusters();
    let (cluster, was_new) = model.incremental_update(&alien, 3);
    println!(
        "incremental update: unseen pattern → cluster {cluster} (new: {was_new}), library {} → {}",
        before,
        model.n_clusters()
    );
    // A repeat of the same pattern now matches without spawning a model.
    let (cluster2, was_new2) = model.incremental_update(&alien, 1);
    assert_eq!(cluster, cluster2);
    assert!(!was_new2, "repeat pattern must match the new cluster");
    println!("repeat of that pattern matched cluster {cluster2} — no retraining needed");
}
