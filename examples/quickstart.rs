//! Quickstart: generate a small synthetic HPC cluster, train NodeSentry,
//! and detect injected anomalies — the whole pipeline in ~40 lines of
//! user code.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nodesentry::core::{NodeSentry, NodeSentryConfig};
use nodesentry::eval::metrics::{adjusted_confusion, aggregate, NodeScores};
use nodesentry::telemetry::DatasetProfile;

fn main() {
    // 1. A small simulated cluster (stands in for Slurm + Prometheus):
    //    jobs with sub-patterns, anomalies injected into the test window
    //    with exact ground truth.
    let mut profile = DatasetProfile::tiny();
    profile.name = "quickstart".into();
    profile.schedule.n_nodes = 6;
    profile.schedule.horizon = 1600;
    profile.events_per_node = 2.5;
    let dataset = profile.generate();
    println!(
        "cluster: {} nodes × {} steps, {} jobs, {} raw metrics, {} injected anomalies",
        dataset.n_nodes(),
        dataset.horizon(),
        dataset.schedule.jobs.len(),
        dataset.catalog.len(),
        dataset.events.len()
    );

    // 2. Offline phase: preprocessing → coarse clustering → one shared
    //    Transformer+MoE model per cluster.
    let cfg = NodeSentryConfig::default();
    let groups = dataset.catalog.group_ids();
    let inputs: Vec<nodesentry::core::NodeInput> = (0..dataset.n_nodes())
        .map(|n| nodesentry::core::NodeInput {
            raw: dataset.raw_node(n),
            transitions: dataset
                .schedule
                .node_timeline(n)
                .iter()
                .map(|s| s.start)
                .filter(|&s| s > 0)
                .collect(),
        })
        .collect();
    let model = NodeSentry::fit(cfg, &inputs, &groups, dataset.split);
    println!(
        "trained: {} pattern clusters (silhouette {:.2}), {} reduced metrics",
        model.n_clusters(),
        model.cluster_model.silhouette,
        model.preprocessor.out_dim()
    );

    // 3. Online phase: per-node detection over the test window
    //    (averaging over the nodes that actually saw an anomaly).
    let mut node_scores = Vec::new();
    for (n, input) in inputs.iter().enumerate() {
        let pred = model.detect_node(&input.raw, &input.transitions, dataset.split);
        let truth = dataset.labels(n);
        let positives = truth[dataset.split..].iter().filter(|&&b| b).count();
        let c = adjusted_confusion(&pred, &truth[dataset.split..], None);
        println!(
            "node {n}: precision {:.2} recall {:.2} ({positives} anomalous points)",
            c.precision(),
            c.recall(),
        );
        if positives > 0 {
            node_scores.push(NodeScores {
                precision: c.precision(),
                recall: c.recall(),
                auc: 0.0,
            });
        }
    }
    let agg = aggregate(&node_scores);
    println!(
        "overall: P {:.2} / R {:.2} / F1 {:.2}",
        agg.precision, agg.recall, agg.f1
    );
}
