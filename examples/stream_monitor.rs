//! Streaming deployment: train a detector offline, then run the held-out
//! window through the sharded `ns-stream` engine one sampling tick at a
//! time, exactly as a live monitoring service would.
//!
//! ```sh
//! cargo run --release --example stream_monitor
//! ```
//!
//! The engine shards nodes across worker threads, assembles job segments
//! on the fly, pattern-matches each post-transition probe against the
//! cluster library, scores through the matched shared model, and emits a
//! `Verdict` per test-window point — bit-identical to batch scoring
//! (`tests/stream_equivalence.rs` proves it).
//!
//! Observability is switched on for the whole run: training stages land
//! in the span report printed at the end, the engine's live metrics
//! (queue depths, latency histograms, fault counters) are served on a
//! local HTTP endpoint while the stream runs, and the example polls its
//! own `/statusz` mid-replay to print the live shard view — exactly what
//! an operator's `watch curl :port/statusz` would see. The flight
//! recorder is armed; the event-journal tail and incident count are
//! printed at the end.

use nodesentry::core::{NodeSentry, NodeSentryConfig};
use nodesentry::obs;
use nodesentry::stream::{Engine, EngineConfig, Tick};
use nodesentry::telemetry::{http_get, DatasetProfile};
use std::collections::HashSet;
use std::sync::Arc;

/// Pull the raw value of a top-level-ish `"key":` out of a JSON string —
/// enough to summarize `/statusz` without a JSON parser dependency.
fn pull<'a>(json: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let Some(start) = json.find(&pat).map(|i| i + pat.len()) else {
        return "?";
    };
    let rest = &json[start..];
    let end = match rest.as_bytes().first() {
        Some(b'[') => rest.find(']').map(|i| i + 1),
        Some(b'{') => rest.find('}').map(|i| i + 1),
        _ => rest.find([',', '}']),
    };
    &rest[..end.unwrap_or(rest.len())]
}

fn main() {
    obs::enable_all();
    obs::incident::set_armed(true);
    // 1. A small simulated cluster with injected anomalies.
    let mut profile = DatasetProfile::tiny();
    profile.name = "stream_monitor".into();
    profile.schedule.n_nodes = 6;
    profile.schedule.horizon = 1200;
    profile.events_per_node = 2.0;
    let dataset = profile.generate();
    println!(
        "cluster: {} nodes × {} steps, split at {}",
        dataset.n_nodes(),
        dataset.horizon(),
        dataset.split
    );

    // 2. Offline phase, as in examples/quickstart.rs.
    let groups = dataset.catalog.group_ids();
    let inputs: Vec<nodesentry::core::NodeInput> = (0..dataset.n_nodes())
        .map(|n| nodesentry::core::NodeInput {
            raw: dataset.raw_node(n),
            transitions: dataset
                .schedule
                .node_timeline(n)
                .iter()
                .map(|s| s.start)
                .filter(|&s| s > 0)
                .collect(),
        })
        .collect();
    let model = NodeSentry::fit(NodeSentryConfig::default(), &inputs, &groups, dataset.split);
    println!("trained: {} pattern clusters", model.n_clusters());

    // 3. Online phase: feed the telemetry step-major (all nodes at step t,
    //    then step t+1, …) through the engine. `ingest` blocks when a
    //    shard's bounded queue is full — backpressure, not buffering.
    let mut cfg = EngineConfig::new(dataset.split);
    cfg.n_shards = 3;
    cfg.smooth_window = model.cfg.smooth_window; // flag on smoothed scores, as detect_node does
    let engine = Engine::new(Arc::new(model), cfg);
    // Live operational surface: scrape `curl localhost:<port>/statusz`
    // (or /metrics, /healthz, /debug/events, /debug/incidents) while the
    // replay below runs (ephemeral port so repeated runs never collide).
    let metrics_server = Engine::serve_metrics("127.0.0.1:0").expect("bind metrics endpoint");
    let addr = metrics_server.local_addr();
    println!("operational surface: http://{addr}/statusz  (also /metrics /healthz /debug/events /debug/incidents)");
    let transitions: Vec<HashSet<usize>> = inputs
        .iter()
        .map(|i| i.transitions.iter().copied().collect())
        .collect();
    let poll_every = dataset.horizon() / 4;
    for step in 0..dataset.horizon() {
        let batch: Vec<Tick> = (0..dataset.n_nodes())
            .map(|node| Tick {
                node,
                step,
                values: inputs[node].raw.row(step).to_vec(),
                transition: transitions[node].contains(&step),
            })
            .collect();
        engine.ingest(batch).expect("stream shard alive");
        // Poll our own /statusz a few times mid-replay: the live shard
        // view an operator would watch.
        if step > 0 && step % poll_every == 0 {
            match http_get(addr, "/statusz") {
                Ok(body) => {
                    let stream = pull(&body, "stream");
                    println!(
                        "statusz @ step {step}: uptime {} s, queues {}, ticks {}, verdicts {}",
                        pull(&body, "uptime_s"),
                        pull(stream, "shard_queue_depths"),
                        pull(stream, "shard_ticks_total"),
                        pull(stream, "verdicts"),
                    );
                }
                Err(e) => println!("statusz @ step {step}: poll failed: {e}"),
            }
        }
    }
    let report = engine.finish();
    assert!(
        report.faults.is_clean(),
        "clean feed must trip no fault counters: {:?}",
        report.faults
    );

    // 4. Verdicts arrive sorted by (node, step); summarize per node.
    for node in 0..dataset.n_nodes() {
        let truth = dataset.labels(node);
        let flagged: Vec<usize> = report
            .verdicts
            .iter()
            .filter(|v| v.node == node && v.anomalous)
            .map(|v| v.step)
            .collect();
        let hits = flagged.iter().filter(|&&s| truth[s]).count();
        println!(
            "node {node}: {} points flagged, {} on injected anomalies",
            flagged.len(),
            hits
        );
    }
    println!(
        "engine: {} ticks over {} shards in {:.2} s, match {:.3} s/cycle, {:.3} ms/point",
        report.stats.n_ticks,
        3,
        report.wall_seconds,
        report.stats.match_s_per_cycle(),
        report.stats.point_latency_ms()
    );

    // 5. What observability saw: p50/p99 per-point latency from the live
    //    histogram, then the span report for the offline fit.
    let reg = obs::metrics::global();
    let q = |q: f64| {
        reg.histogram_quantile(nodesentry::stream::metrics::POINT_SECONDS, &[], q)
            .unwrap_or(0.0)
    };
    println!(
        "live histogram: point latency p50 {:.3} ms / p99 {:.3} ms",
        q(0.50) * 1e3,
        q(0.99) * 1e3
    );
    metrics_server.shutdown();

    // 6. The flight recorder's view of the run: journal tail + incidents
    //    (a clean feed arms the triggers but should fire none).
    let js = obs::events::stats();
    println!(
        "\nevent journal: {} recorded ({} dropped); tail:",
        js.recorded, js.dropped
    );
    for e in obs::events::recent(5) {
        println!("  {}", e.to_json());
    }
    let inc = obs::incident::stats();
    println!(
        "incidents: {} captured, {} suppressed (armed, clean feed)",
        inc.captured, inc.suppressed
    );

    println!("\n--- span report ---");
    print!("{}", obs::trace::report());
}
